//! **Differential-oracle verification** — the harness proving itself.
//!
//! Three sections:
//!
//! 1. **Clean runs**: a benchmark × policy matrix runs with the
//!    functional reference model attached. Every load's bytes are
//!    compared against the oracle and structural invariants are audited
//!    at EP boundaries, mode switches and kernel end; any violation
//!    fails the experiment.
//! 2. **Mutation detection**: bit-flip injection with recovery
//!    *disabled* (`FaultConfig::disable_recovery`) — detected flips are
//!    consumed instead of refetched, a deliberately planted correctness
//!    bug. The oracle must flag the corruption; if it stays silent the
//!    verification harness itself is broken and the experiment fails.
//! 3. **Recovery control**: the same injection with recovery *enabled*
//!    must produce zero violations — the detect-and-refetch path really
//!    does keep corrupted bytes away from the warps.

use crate::experiments::{lookup_benchmark, write_csv};
use crate::report::outln;
use crate::runner::{experiment_config, fault_injection, run_benchmark_shadowed, PolicyKind};
use latte_gpusim::{FaultConfig, GpuConfig};
use std::io;

/// Benchmarks for the clean matrix: one cache-sensitive, one streaming,
/// one irregular — small enough to keep `verify` cheap, varied enough to
/// exercise hit-heavy, miss-heavy and mode-switching behaviour.
const CLEAN_BENCHES: [&str; 3] = ["BFS", "NW", "KM"];

/// Policies for the clean matrix: the uncompressed baseline, both static
/// compressed data paths (BDI sub-block placement, SC dictionary), and
/// the full adaptive controller (mode switches + demotion).
const CLEAN_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Baseline,
    PolicyKind::StaticBdi,
    PolicyKind::StaticSc,
    PolicyKind::LatteCc,
];

/// Injection rate for the mutation/control sections: high enough that a
/// short run sees many detected flips, low enough not to degenerate.
const MUTATION_RATE: f64 = 0.02;

/// Runs the verification experiment.
pub fn run() -> io::Result<()> {
    let seed = fault_injection().map_or(42, |f| f.seed);
    let mut rows = vec![vec![
        "section".to_owned(),
        "benchmark".to_owned(),
        "policy".to_owned(),
        "loads_checked".to_owned(),
        "checkpoints".to_owned(),
        "violations".to_owned(),
    ]];

    outln!("Differential oracle: clean shadow-checked runs\n");
    outln!(
        "{:>6} {:>18} {:>14} {:>12} {:>11}",
        "bench", "policy", "loads_checked", "checkpoints", "violations"
    );
    let mut clean_failures = 0u64;
    for abbr in CLEAN_BENCHES {
        let bench = lookup_benchmark(abbr)?;
        for policy in CLEAN_POLICIES {
            let (_, report) = run_benchmark_shadowed(policy, &bench, &experiment_config());
            outln!(
                "{:>6} {:>18} {:>14} {:>12} {:>11}",
                abbr,
                policy.name(),
                report.loads_checked,
                report.checkpoints,
                report.violations_total
            );
            if report.loads_checked == 0 {
                return Err(io::Error::other(format!(
                    "{abbr}/{}: shadow check compared no loads — the hook is not wired",
                    policy.name()
                )));
            }
            clean_failures += report.violations_total;
            for v in report.violations.iter().take(3) {
                outln!("    !! {v}");
            }
            rows.push(vec![
                "clean".to_owned(),
                abbr.to_owned(),
                policy.name().to_owned(),
                report.loads_checked.to_string(),
                report.checkpoints.to_string(),
                report.violations_total.to_string(),
            ]);
        }
    }
    if clean_failures > 0 {
        write_csv("verify_oracle", &rows)?;
        return Err(io::Error::other(format!(
            "clean runs diverged from the reference model: {clean_failures} violation(s)"
        )));
    }

    // Mutation: recovery disabled. Static-BDI on a reuse-heavy benchmark
    // guarantees compressed hits for the injector to corrupt.
    outln!("\nMutation: bit flips at {MUTATION_RATE} per compressed hit, recovery DISABLED");
    let bench = lookup_benchmark("BFS")?;
    let mutated = GpuConfig {
        faults: Some(FaultConfig {
            disable_recovery: true,
            ..FaultConfig::bitflips(seed, MUTATION_RATE)
        }),
        ..experiment_config()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &mutated);
    outln!(
        "  {} flips detected-but-consumed, {} loads checked, {} violation(s)",
        result.stats.faults.bitflips_detected,
        report.loads_checked,
        report.violations_total
    );
    rows.push(vec![
        "mutation".to_owned(),
        bench.abbr.to_owned(),
        PolicyKind::StaticBdi.name().to_owned(),
        report.loads_checked.to_string(),
        report.checkpoints.to_string(),
        report.violations_total.to_string(),
    ]);
    match report.violations.first() {
        Some(first) => outln!("  oracle caught the corruption: {first}"),
        None => {
            write_csv("verify_oracle", &rows)?;
            return Err(io::Error::other(
                "MUTATION NOT DETECTED: recovery was disabled under injection but the \
                 oracle reported zero violations — the verification harness cannot be trusted",
            ));
        }
    }

    // Control: identical injection, recovery enabled. Detected flips are
    // refetched before any warp consumes them, so the oracle must agree
    // with every load.
    outln!("\nControl: same injection, recovery ENABLED");
    let recovered = GpuConfig {
        faults: Some(FaultConfig::bitflips(seed, MUTATION_RATE)),
        ..experiment_config()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &recovered);
    outln!(
        "  {} flips detected-and-refetched, {} loads checked, {} violation(s)",
        result.stats.faults.bitflips_detected,
        report.loads_checked,
        report.violations_total
    );
    rows.push(vec![
        "control".to_owned(),
        bench.abbr.to_owned(),
        PolicyKind::StaticBdi.name().to_owned(),
        report.loads_checked.to_string(),
        report.checkpoints.to_string(),
        report.violations_total.to_string(),
    ]);
    if result.stats.faults.bitflips_detected == 0 {
        write_csv("verify_oracle", &rows)?;
        return Err(io::Error::other(
            "control run detected no flips — the mutation section proved nothing",
        ));
    }
    if report.violations_total > 0 {
        write_csv("verify_oracle", &rows)?;
        return Err(io::Error::other(format!(
            "recovery is enabled yet the oracle found {} violation(s)",
            report.violations_total
        )));
    }

    // Write-back store model: the oracle tracks every store eagerly, so
    // silently dropping dirty write-backs (`--no-writeback`) must surface
    // as a stale refetch. A write-heavy benchmark guarantees dirty lines
    // are evicted and refetched *within* a kernel.
    outln!("\nWrite-back mutation: dirty write-backs silently DROPPED");
    let wb_bench = latte_workloads::write_heavy_benchmark("WSC").ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, "write-heavy benchmark WSC missing")
    })?;
    let dropped = GpuConfig {
        write_back: true,
        faults: Some(FaultConfig {
            drop_writebacks: true,
            seed,
            ..FaultConfig::default()
        }),
        ..experiment_config()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::LatteCc, &wb_bench, &dropped);
    outln!(
        "  {} write-back(s) dropped, {} stores observed, {} violation(s)",
        result.stats.faults.writebacks_dropped,
        report.stores_observed,
        report.violations_total
    );
    rows.push(vec![
        "wb-mutation".to_owned(),
        wb_bench.abbr.to_owned(),
        PolicyKind::LatteCc.name().to_owned(),
        report.loads_checked.to_string(),
        report.checkpoints.to_string(),
        report.violations_total.to_string(),
    ]);
    if result.stats.faults.writebacks_dropped == 0 {
        write_csv("verify_oracle", &rows)?;
        return Err(io::Error::other(
            "the drop-write-backs mutation never fired — the section proved nothing",
        ));
    }
    match report.violations.first() {
        Some(first) => outln!("  oracle caught the lost write-back: {first}"),
        None => {
            write_csv("verify_oracle", &rows)?;
            return Err(io::Error::other(
                "MUTATION NOT DETECTED: dirty write-backs were dropped but the oracle \
                 reported zero violations — the store model cannot be trusted",
            ));
        }
    }

    // Control: the same write-back run with the data path intact (plus
    // outbound write-back parity faults, whose retries must be invisible
    // to the architectural bytes) verifies clean.
    outln!("\nWrite-back control: data path intact, parity faults retried");
    let wb_clean = GpuConfig {
        write_back: true,
        faults: Some(FaultConfig::writeback_faults(seed, MUTATION_RATE)),
        ..experiment_config()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::LatteCc, &wb_bench, &wb_clean);
    outln!(
        "  {} write-back fault(s) retried, {} stores observed, {} violation(s)",
        result.stats.faults.writeback_faults,
        report.stores_observed,
        report.violations_total
    );
    rows.push(vec![
        "wb-control".to_owned(),
        wb_bench.abbr.to_owned(),
        PolicyKind::LatteCc.name().to_owned(),
        report.loads_checked.to_string(),
        report.checkpoints.to_string(),
        report.violations_total.to_string(),
    ]);
    write_csv("verify_oracle", &rows)?;
    if report.stores_observed == 0 {
        return Err(io::Error::other(
            "write-back control observed no stores — the store model never engaged",
        ));
    }
    if report.violations_total > 0 {
        return Err(io::Error::other(format!(
            "the write-back data path is intact yet the oracle found {} violation(s)",
            report.violations_total
        )));
    }
    outln!(
        "\nverify: oracle catches planted corruption (consumed flips, lost write-backs) \
         and passes clean, recovered and write-back runs"
    );
    Ok(())
}
