//! **Figure 18** — LATTE-CC's flexibility in its component algorithms:
//! swapping SC for BPC as the high-capacity mode (LATTE-CC-BDI-BPC).
//! Paper shape: similar on average, better on the BPC-affine workloads
//! (PF, MIS, CLR, FW).

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind};
use crate::sim;
use latte_workloads::{c_sens, Category};

/// Runs the Fig 18 variant study.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 18: LATTE-CC vs LATTE-CC-BDI-BPC (C-Sens)\n");
    outln!("{:6} {:>11} {:>15}", "bench", "LATTE(SC)", "LATTE(BDI-BPC)");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "latte_bdi_sc".to_owned(),
        "latte_bdi_bpc".to_owned(),
    ]];
    let mut sc_spd = Vec::new();
    let mut bpc_spd = Vec::new();
    let benches = c_sens();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::LatteCc,
        PolicyKind::LatteCcBdiBpc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        debug_assert_eq!(bench.category, Category::CSens);
        let (base, latte, latte_bpc) = (&runs[0], &runs[1], &runs[2]);
        let (s1, s2) = (latte.speedup_over(base), latte_bpc.speedup_over(base));
        let marker = if ["PF", "MIS", "CLR", "FW"].contains(&bench.abbr) {
            "  <- BPC-affine"
        } else {
            ""
        };
        outln!("{:6} {:>11.3} {:>15.3}{marker}", bench.abbr, s1, s2);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{s1:.4}"),
            format!("{s2:.4}"),
        ]);
        sc_spd.push(s1);
        bpc_spd.push(s2);
    }
    outln!(
        "{:6} {:>11.3} {:>15.3}   (geomean)",
        "MEAN",
        geomean(&sc_spd),
        geomean(&bpc_spd)
    );
    csv.push(vec![
        "GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&sc_spd)),
        format!("{:.4}", geomean(&bpc_spd)),
    ]);
    write_csv("fig18_bdi_bpc_variant", &csv)
}
