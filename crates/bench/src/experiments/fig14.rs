//! **Figure 14** — Breakdown of LATTE-CC's energy saving on C-Sens
//! workloads. Paper shape: data movement and static energy provide the
//! bulk of the saving (~4.2% and ~3.7% of GPU energy respectively) while
//! compressor/decompressor overhead stays below 0.25%.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::PolicyKind;
use crate::sim;
use latte_workloads::c_sens;

/// Runs the Fig 14 experiment.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 14: LATTE-CC energy saving breakdown, C-Sens (% of baseline GPU energy)\n");
    outln!(
        "{:6} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "bench", "data-move", "static", "core+L1", "overhead", "total"
    );
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "data_movement_saving_pct".to_owned(),
        "static_saving_pct".to_owned(),
        "core_l1_saving_pct".to_owned(),
        "compression_overhead_pct".to_owned(),
        "total_saving_pct".to_owned(),
    ]];
    let mut sums = [0.0f64; 5];
    let benches = c_sens();
    let policies = [PolicyKind::Baseline, PolicyKind::LatteCc];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let (base, latte) = (&runs[0], &runs[1]);
        let total = base.energy.total_nj();
        let dm = (base.energy.data_movement_nj() - latte.energy.data_movement_nj()) / total * 100.0;
        let st = (base.energy.static_nj - latte.energy.static_nj) / total * 100.0;
        let core = (base.energy.core_nj + base.energy.l1_nj
            - latte.energy.core_nj
            - latte.energy.l1_nj)
            / total
            * 100.0;
        let overhead = latte.energy.compression_overhead_nj() / total * 100.0;
        let saving = (total - latte.energy.total_nj()) / total * 100.0;
        outln!(
            "{:6} {:>9.2}% {:>8.2}% {:>8.2}% {:>9.3}% {:>8.2}%",
            bench.abbr, dm, st, core, overhead, saving
        );
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{dm:.3}"),
            format!("{st:.3}"),
            format!("{core:.3}"),
            format!("{overhead:.4}"),
            format!("{saving:.3}"),
        ]);
        for (s, v) in sums.iter_mut().zip([dm, st, core, overhead, saving]) {
            *s += v;
        }
    }
    let n = benches.len() as f64;
    outln!(
        "{:6} {:>9.2}% {:>8.2}% {:>8.2}% {:>9.3}% {:>8.2}%   (mean)",
        "MEAN",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n
    );
    csv.push(vec![
        "MEAN".to_owned(),
        format!("{:.3}", sums[0] / n),
        format!("{:.3}", sums[1] / n),
        format!("{:.3}", sums[2] / n),
        format!("{:.4}", sums[3] / n),
        format!("{:.3}", sums[4] / n),
    ]);
    write_csv("fig14_energy_breakdown", &csv)
}
