//! Ablation studies over LATTE-CC's design choices (called out in
//! DESIGN.md §4): the latency-tolerance term, the effective miss-latency
//! constant, the experimental-phase length, the number of dedicated
//! sampling sets, and the warp scheduler.
//!
//! Each ablation reports the C-Sens-subset geomean speedup of LATTE-CC
//! under the varied parameter, everything else held at the defaults.

use crate::report::outln;
use crate::experiments::{lookup_benchmark, write_csv};
use crate::pool;
use crate::runner::{experiment_config, geomean, PolicyKind};
use crate::sim;
use latte_core::{LatteCc, LatteConfig};
use latte_gpusim::{Gpu, GpuConfig, Kernel, SchedulerKind};
use latte_workloads::BenchmarkSpec;

/// A representative cache-sensitive subset (one per behaviour class) that
/// keeps each ablation under a minute.
fn subset() -> std::io::Result<Vec<BenchmarkSpec>> {
    ["SS", "KM", "BC", "FW", "PRK", "DJK"]
        .iter()
        .map(|a| lookup_benchmark(a))
        .collect()
}

fn run_latte(config: &GpuConfig, latte: &LatteConfig, bench: &BenchmarkSpec) -> u64 {
    let latte = latte.clone();
    let mut gpu = Gpu::new(config, move |_| Box::new(LatteCc::new(latte.clone())));
    bench
        .build_kernels()
        .iter()
        .map(|k| gpu.run_kernel(k as &dyn Kernel).cycles)
        .sum()
}

fn latte_defaults(config: &GpuConfig) -> LatteConfig {
    LatteConfig {
        num_l1_sets: config.l1_geometry.num_sets(),
        l1_base_hit_latency: config.l1_hit_latency as f64,
        ..LatteConfig::paper()
    }
}

/// Geomean LATTE-CC speedup over the subset for one (gpu, latte) config.
///
/// Each benchmark runs as a pool subtask: the varied-parameter LATTE run
/// is a bespoke `LatteConfig` (not a named policy), while its Baseline
/// reference is a standard simulation served by the memo cache and shared
/// across every ablation point that keeps the machine config fixed.
fn subset_geomean(config: &GpuConfig, latte: &LatteConfig) -> std::io::Result<f64> {
    let speedups = pool::run_subtasks(
        subset()?
            .into_iter()
            .map(|bench| {
                let config = config.clone();
                let latte = latte.clone();
                Box::new(move || {
                    let base =
                        sim::run_cached(PolicyKind::Baseline, &bench, &config).cycles();
                    base as f64 / run_latte(&config, &latte, &bench).max(1) as f64
                }) as Box<dyn FnOnce() -> f64 + Send>
            })
            .collect(),
    );
    Ok(geomean(&speedups))
}

/// Tolerance-awareness ablation: scale the Eq. (4) estimate from 0
/// (tolerance-blind, i.e. conventional AMAT) upwards.
pub fn tolerance() -> std::io::Result<()> {
    outln!("Ablation: latency-tolerance scale (0 = tolerance-blind)\n");
    let config = experiment_config();
    let mut rows = vec![vec!["tolerance_scale".to_owned(), "csens_subset_geomean".to_owned()]];
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let latte = LatteConfig {
            tolerance_scale: scale,
            ..latte_defaults(&config)
        };
        let g = subset_geomean(&config, &latte)?;
        outln!("scale {scale:>4.1}: {g:.4}");
        rows.push(vec![format!("{scale}"), format!("{g:.4}")]);
    }
    write_csv("ablation_tolerance_scale", &rows)
}

/// Miss-latency constant ablation: how sensitive are the AMAT decisions
/// to the assumed effective miss cost?
pub fn miss_latency() -> std::io::Result<()> {
    outln!("Ablation: AMAT effective miss-latency constant\n");
    let config = experiment_config();
    let mut rows = vec![vec!["miss_latency".to_owned(), "csens_subset_geomean".to_owned()]];
    for ml in [40.0, 80.0, 110.0, 150.0, 230.0] {
        let latte = LatteConfig {
            miss_latency: ml,
            ..latte_defaults(&config)
        };
        let g = subset_geomean(&config, &latte)?;
        outln!("miss_latency {ml:>5.0}: {g:.4}");
        rows.push(vec![format!("{ml}"), format!("{g:.4}")]);
    }
    write_csv("ablation_miss_latency", &rows)
}

/// EP-length ablation (the paper empirically picked 256 accesses/EP):
/// shorter EPs adapt faster but sample less; longer EPs the reverse.
pub fn ep_length() -> std::io::Result<()> {
    outln!("Ablation: experimental-phase length (L1 accesses per EP)\n");
    let base = experiment_config();
    let mut rows = vec![vec!["ep_accesses".to_owned(), "csens_subset_geomean".to_owned()]];
    for ep in [64u64, 128, 256, 512, 1024] {
        let config = GpuConfig {
            ep_accesses: ep,
            ..base.clone()
        };
        let latte = latte_defaults(&config);
        let g = subset_geomean(&config, &latte)?;
        outln!("EP {ep:>5}: {g:.4}");
        rows.push(vec![ep.to_string(), format!("{g:.4}")]);
    }
    write_csv("ablation_ep_length", &rows)
}

/// Dedicated-set count ablation: sampling fidelity vs sampling overhead.
pub fn dedicated_sets() -> std::io::Result<()> {
    outln!("Ablation: dedicated sets per compression mode\n");
    let config = experiment_config();
    let mut rows = vec![vec![
        "dedicated_per_mode".to_owned(),
        "csens_subset_geomean".to_owned(),
    ]];
    for d in [1usize, 2, 4, 8] {
        let latte = LatteConfig {
            dedicated_sets_per_mode: d,
            ..latte_defaults(&config)
        };
        let g = subset_geomean(&config, &latte)?;
        outln!("dedicated {d}: {g:.4}  (overhead {:.0}% of sets)", 3.0 * d as f64 / 32.0 * 100.0);
        rows.push(vec![d.to_string(), format!("{g:.4}")]);
    }
    write_csv("ablation_dedicated_sets", &rows)
}

/// Scheduler ablation: the paper's GTO vs loose round-robin.
pub fn scheduler() -> std::io::Result<()> {
    outln!("Ablation: warp scheduler (GTO vs LRR)\n");
    let base = experiment_config();
    let mut rows = vec![vec![
        "scheduler".to_owned(),
        "csens_subset_geomean".to_owned(),
    ]];
    for (name, kind) in [("GTO", SchedulerKind::Gto), ("LRR", SchedulerKind::Lrr)] {
        let config = GpuConfig {
            scheduler: kind,
            ..base.clone()
        };
        let latte = latte_defaults(&config);
        let g = subset_geomean(&config, &latte)?;
        outln!("{name}: {g:.4}");
        rows.push(vec![name.to_owned(), format!("{g:.4}")]);
    }
    write_csv("ablation_scheduler", &rows)
}

/// Runs every ablation.
pub fn run() -> std::io::Result<()> {
    tolerance()?;
    outln!();
    miss_latency()?;
    outln!();
    ep_length()?;
    outln!();
    dedicated_sets()?;
    outln!();
    scheduler()
}
