//! **Table III** — The benchmark suite and its cache-sensitivity
//! classification: a workload is C-Sens if a 4× larger L1 speeds it up by
//! more than 20%. This experiment *measures* the classification on the
//! synthetic suite and reports any divergence from the declared category.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{experiment_config, PolicyKind};
use crate::sim;
use latte_cache::CacheGeometry;
use latte_gpusim::GpuConfig;
use latte_workloads::{suite, Category};

/// Runs the Table III classification check.
pub fn run() -> std::io::Result<()> {
    outln!("Table III: benchmarks and measured 4x-cache sensitivity\n");
    outln!(
        "{:6} {:28} {:>9} {:>10} {:>10} {:>6}",
        "abbr", "name", "declared", "4x-speedup", "measured", "match"
    );
    let base_config = experiment_config();
    let big_config = GpuConfig {
        l1_geometry: CacheGeometry {
            size_bytes: base_config.l1_geometry.size_bytes * 4,
            ..base_config.l1_geometry
        },
        ..base_config.clone()
    };
    let mut csv = vec![vec![
        "abbr".to_owned(),
        "name".to_owned(),
        "declared_category".to_owned(),
        "speedup_with_4x_cache".to_owned(),
        "measured_category".to_owned(),
    ]];
    let mut mismatches = 0;
    let benches = suite();
    // One batch over both machine sizes; the normal-cache Baseline runs
    // are the same simulations every figure uses, so they come from the
    // memo cache on a full sweep.
    let mut jobs = Vec::new();
    for config in [&base_config, &big_config] {
        for bench in &benches {
            jobs.push(sim::SimJob {
                policy: PolicyKind::Baseline,
                bench: bench.clone(),
                config: config.clone(),
            });
        }
    }
    let results = sim::run_batch(jobs);
    let (base_runs, big_runs) = results.split_at(benches.len());
    for ((bench, base_r), big_r) in benches.iter().zip(base_runs).zip(big_runs) {
        let base = base_r.cycles();
        let big = big_r.cycles();
        let speedup = base as f64 / big.max(1) as f64;
        let measured = if speedup > 1.20 {
            Category::CSens
        } else {
            Category::CInSens
        };
        let matches = measured == bench.category;
        mismatches += usize::from(!matches);
        outln!(
            "{:6} {:28} {:>9} {:>10.3} {:>10} {:>6}",
            bench.abbr,
            bench.name,
            bench.category.to_string(),
            speedup,
            measured.to_string(),
            if matches { "yes" } else { "NO" }
        );
        csv.push(vec![
            bench.abbr.to_owned(),
            bench.name.to_owned(),
            bench.category.to_string(),
            format!("{speedup:.4}"),
            measured.to_string(),
        ]);
    }
    outln!("\n{mismatches} classification mismatches");
    write_csv("table3_benchmarks", &csv)
}
