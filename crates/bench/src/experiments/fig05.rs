//! **Figure 5** — GPU latency tolerance over time for the Similarity
//! Score (SS) benchmark: SS cycles through phases of high, moderate and
//! low latency tolerance, which is exactly what LATTE-CC's fine-grained
//! adaptation exploits.

use crate::report::outln;
use crate::experiments::{lookup_benchmark, write_csv};
use crate::runner::experiment_config;
use latte_gpusim::{Gpu, GpuConfig, Kernel, UncompressedPolicy};

/// Runs the Fig 5 tolerance trace.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 5: latency tolerance over time (SS, SM 0)\n");
    let bench = lookup_benchmark("SS")?;
    let config = GpuConfig {
        record_traces: true,
        ..experiment_config()
    };
    let mut gpu = Gpu::new(&config, |_| Box::new(UncompressedPolicy));
    let mut rows = vec![vec![
        "ep".to_owned(),
        "end_cycle".to_owned(),
        "latency_tolerance".to_owned(),
        "l1_hit_rate".to_owned(),
    ]];
    let mut all = Vec::new();
    for kernel in bench.build_kernels() {
        let stats = gpu.run_kernel(&kernel as &dyn Kernel);
        all.extend(stats.traces);
    }
    // Print a compact sparkline-style summary: one line per 8 EPs.
    let mut i = 0;
    for chunk in all.chunks(8) {
        let mean: f64 =
            chunk.iter().map(|t| t.latency_tolerance).sum::<f64>() / chunk.len() as f64;
        let bar_len = (mean * 2.0).min(60.0) as usize;
        outln!("EP {:>4}..{:<4} tol {:>6.2} {}", i, i + chunk.len(), mean, "#".repeat(bar_len));
        i += chunk.len();
    }
    let min = all.iter().map(|t| t.latency_tolerance).fold(f64::MAX, f64::min);
    let max = all.iter().map(|t| t.latency_tolerance).fold(0.0, f64::max);
    outln!("\n{} EPs, tolerance range [{min:.2}, {max:.2}]", all.len());
    assert!(
        max > 2.0 * (min + 0.5),
        "SS should show strong tolerance variation over time"
    );
    for (ep, t) in all.iter().enumerate() {
        rows.push(vec![
            ep.to_string(),
            t.end_cycle.to_string(),
            format!("{:.4}", t.latency_tolerance),
            format!("{:.4}", t.l1_hit_rate),
        ]);
    }
    write_csv("fig05_ss_latency_tolerance", &rows)
}
