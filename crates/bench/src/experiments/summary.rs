//! **Headline summary** — the paper's §V-A aggregate claims, measured:
//! per-category mean speedups, miss reductions and energy savings for
//! every policy, side by side with the paper's reported values.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind, ALL_POLICIES};
use crate::sim;
use latte_workloads::{suite, Category};

/// Runs the summary aggregation.
pub fn run() -> std::io::Result<()> {
    outln!("Headline summary (C-Sens geomeans vs paper)\n");
    let benches = suite();
    let mut csv = vec![vec![
        "policy".to_owned(),
        "csens_speedup".to_owned(),
        "cinsens_speedup".to_owned(),
        "csens_miss_reduction_pct".to_owned(),
        "csens_energy_ratio".to_owned(),
    ]];
    outln!(
        "{:20} {:>10} {:>10} {:>10} {:>10}",
        "policy", "spd-Sens", "spd-InSens", "mr-Sens%", "en-Sens"
    );
    // One 9-policy × full-suite matrix: every simulation the summary
    // needs, fanned out across the whole pool in a single batch.
    let matrix = sim::run_matrix_default(&ALL_POLICIES, &benches);
    for (pi, &policy) in ALL_POLICIES.iter().enumerate() {
        if policy == PolicyKind::Baseline {
            continue;
        }
        let mut spd = (Vec::new(), Vec::new());
        let mut mr = Vec::new();
        let mut en = Vec::new();
        for (bench, runs) in benches.iter().zip(&matrix) {
            let base = &runs[0];
            debug_assert_eq!(base.policy, PolicyKind::Baseline);
            let r = &runs[pi];
            match bench.category {
                Category::CSens => {
                    spd.0.push(r.speedup_over(base));
                    mr.push(r.miss_reduction_over(base) * 100.0);
                    en.push(r.energy_ratio_over(base));
                }
                Category::CInSens => spd.1.push(r.speedup_over(base)),
            }
        }
        let amean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        outln!(
            "{:20} {:>10.3} {:>10.3} {:>9.1}% {:>10.3}",
            policy.name(),
            geomean(&spd.0),
            geomean(&spd.1),
            amean(&mr),
            geomean(&en)
        );
        csv.push(vec![
            policy.name().to_owned(),
            format!("{:.4}", geomean(&spd.0)),
            format!("{:.4}", geomean(&spd.1)),
            format!("{:.2}", amean(&mr)),
            format!("{:.4}", geomean(&en)),
        ]);
    }
    outln!("\npaper (C-Sens): LATTE-CC +19.2% spd / 24.6% mr / 0.90 energy;");
    outln!("               Static-BDI +13.7% / 19.2% / 0.95; Static-SC -8.2% / 28.7% / ~1.0");
    write_csv("summary_headline", &csv)
}
