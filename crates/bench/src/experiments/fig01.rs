//! **Figure 1** — Performance sensitivity of GPU workloads to L1 data
//! cache hit latency. The paper sweeps the added hit latency from 0 to 14
//! cycles for PRK, CLR, MIS, BC and FW: PRK is insensitive, CLR and MIS
//! tolerate ~9 cycles, BC and FW degrade quickly.

use crate::report::{out, outln};
use crate::experiments::{lookup_benchmark, write_csv};
use crate::runner::{experiment_config, PolicyKind};
use crate::sim;
use latte_gpusim::GpuConfig;

const BENCHES: [&str; 5] = ["PRK", "CLR", "MIS", "BC", "FW"];
const LATENCIES: [u64; 6] = [0, 3, 6, 9, 12, 14];

/// Runs the Fig 1 sweep.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 1: IPC (normalised to +0) vs added L1 hit latency\n");
    let mut rows = vec![{
        let mut h = vec!["benchmark".to_owned()];
        h.extend(LATENCIES.iter().map(|l| format!("+{l}")));
        h
    }];
    out!("{:6}", "bench");
    for l in LATENCIES {
        out!(" {:>7}", format!("+{l}"));
    }
    outln!();
    // One batch over the whole (benchmark × latency) grid. The +0 point
    // is the standard Baseline/experiment-machine simulation, so it is
    // shared with every other figure through the memo cache.
    let mut jobs = Vec::new();
    for abbr in BENCHES {
        let bench = lookup_benchmark(abbr)?;
        for &extra in &LATENCIES {
            jobs.push(sim::SimJob {
                policy: PolicyKind::Baseline,
                bench: bench.clone(),
                config: GpuConfig {
                    extra_hit_latency: extra,
                    ..experiment_config()
                },
            });
        }
    }
    let results = sim::run_batch(jobs);
    for (abbr, grid) in BENCHES.iter().zip(results.chunks(LATENCIES.len())) {
        let cycles: Vec<u64> = grid.iter().map(crate::runner::BenchResult::cycles).collect();
        let base = cycles[0] as f64;
        let normalised: Vec<f64> = cycles.iter().map(|&c| base / c as f64).collect();
        out!("{:6}", abbr);
        for n in &normalised {
            out!(" {n:>7.3}");
        }
        outln!();
        let mut row = vec![(*abbr).to_owned()];
        row.extend(normalised.iter().map(|n| format!("{n:.4}")));
        rows.push(row);
    }
    write_csv("fig01_hit_latency_sensitivity", &rows)
}
