//! **Figure 11** — Application speedup under Static-BDI, Static-SC,
//! LATTE-CC and Kernel-OPT, normalised to the uncompressed baseline.
//!
//! Paper shape: LATTE-CC wins on average for C-Sens (+19.2%, vs +13.7%
//! Static-BDI and −8.2% Static-SC) and slightly beats the Kernel-OPT
//! oracle; C-InSens workloads are unaffected except Static-SC, which
//! degrades several of them.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::pool;
use crate::runner::{experiment_config, geomean, PolicyKind};
use crate::sim;
use latte_core::run_kernel_opt;
use latte_gpusim::Kernel;
use latte_workloads::{suite, Category};

/// One benchmark's Fig 11 numbers.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Benchmark abbreviation.
    pub abbr: &'static str,
    /// Sensitivity category.
    pub category: Category,
    /// Speedups: [Static-BDI, Static-SC, LATTE-CC, Kernel-OPT].
    pub speedups: [f64; 4],
}

/// Computes the Fig 11 data set (reused by `summary`).
#[must_use]
pub fn collect() -> Vec<Fig11Row> {
    let config = experiment_config();
    let benches = suite();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    let matrix = sim::run_matrix(&policies, &benches, &config);
    // The Kernel-OPT oracle is not a policy simulation (it sweeps every
    // mode per kernel), so it bypasses the memo cache — but it is the
    // most expensive column, so fan it out as one subtask per benchmark.
    let opt_cycles = pool::run_subtasks(
        benches
            .iter()
            .map(|bench| {
                let bench = bench.clone();
                let config = config.clone();
                Box::new(move || {
                    let kernels = bench.build_kernels();
                    let refs: Vec<&dyn Kernel> =
                        kernels.iter().map(|k| k as &dyn Kernel).collect();
                    run_kernel_opt(&config, &refs).total_cycles()
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect(),
    );
    benches
        .iter()
        .zip(matrix)
        .zip(opt_cycles)
        .map(|((bench, runs), opt_cycles)| {
            let (base, bdi, sc, latte) = (&runs[0], &runs[1], &runs[2], &runs[3]);
            Fig11Row {
                abbr: bench.abbr,
                category: bench.category,
                speedups: [
                    bdi.speedup_over(base),
                    sc.speedup_over(base),
                    latte.speedup_over(base),
                    base.stats.cycles as f64 / opt_cycles.max(1) as f64,
                ],
            }
        })
        .collect()
}

/// Prints per-category geomeans for a set of rows.
fn print_means(rows: &[Fig11Row], category: Category, csv: &mut Vec<Vec<String>>) {
    let in_cat: Vec<&Fig11Row> = rows.iter().filter(|r| r.category == category).collect();
    let mut means = [0.0; 4];
    for (i, m) in means.iter_mut().enumerate() {
        *m = geomean(&in_cat.iter().map(|r| r.speedups[i]).collect::<Vec<_>>());
    }
    outln!(
        "{:6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}   ({category} geomean)",
        "MEAN", means[0], means[1], means[2], means[3]
    );
    csv.push(vec![
        format!("{category}_GEOMEAN"),
        format!("{:.4}", means[0]),
        format!("{:.4}", means[1]),
        format!("{:.4}", means[2]),
        format!("{:.4}", means[3]),
    ]);
}

/// Runs the Fig 11 experiment.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 11: speedup over uncompressed baseline\n");
    outln!(
        "{:6} {:>9} {:>9} {:>9} {:>9}",
        "bench", "BDI", "SC", "LATTE", "K-OPT"
    );
    let rows = collect();
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
        "kernel_opt".to_owned(),
    ]];
    for cat in [Category::CInSens, Category::CSens] {
        for r in rows.iter().filter(|r| r.category == cat) {
            outln!(
                "{:6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                r.abbr, r.speedups[0], r.speedups[1], r.speedups[2], r.speedups[3]
            );
            csv.push(vec![
                r.abbr.to_owned(),
                format!("{:.4}", r.speedups[0]),
                format!("{:.4}", r.speedups[1]),
                format!("{:.4}", r.speedups[2]),
                format!("{:.4}", r.speedups[3]),
            ]);
        }
        print_means(&rows, cat, &mut csv);
        outln!();
    }
    write_csv("fig11_speedups", &csv)
}
