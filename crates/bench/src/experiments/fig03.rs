//! **Figure 3** — Performance upper bound of static compression: the
//! capacity benefit with decompression latency forced to zero.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, experiment_config, PolicyKind};
use crate::sim;
use latte_gpusim::GpuConfig;
use latte_workloads::{suite, Category};

/// Runs the Fig 3 upper-bound study.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 3: speedup upper bound (zero decompression latency)\n");
    let config = GpuConfig {
        zero_decompression_latency: true,
        ..experiment_config()
    };
    outln!("{:6} {:>10} {:>10}", "bench", "BDI-0lat", "SC-0lat");
    let mut rows = vec![vec![
        "benchmark".to_owned(),
        "static_bdi_zero_latency".to_owned(),
        "static_sc_zero_latency".to_owned(),
    ]];
    let mut sens = (Vec::new(), Vec::new());
    let benches = suite();
    let policies = [PolicyKind::Baseline, PolicyKind::StaticBdi, PolicyKind::StaticSc];
    for (bench, runs) in benches.iter().zip(sim::run_matrix(&policies, &benches, &config)) {
        let (base, bdi, sc) = (&runs[0], &runs[1], &runs[2]);
        let (s_bdi, s_sc) = (bdi.speedup_over(base), sc.speedup_over(base));
        outln!("{:6} {:>10.3} {:>10.3}", bench.abbr, s_bdi, s_sc);
        rows.push(vec![
            bench.abbr.to_owned(),
            format!("{s_bdi:.4}"),
            format!("{s_sc:.4}"),
        ]);
        if bench.category == Category::CSens {
            sens.0.push(s_bdi);
            sens.1.push(s_sc);
        }
    }
    outln!(
        "{:6} {:>10.3} {:>10.3}   (C-Sens geomean)",
        "MEAN",
        geomean(&sens.0),
        geomean(&sens.1)
    );
    rows.push(vec![
        "CSENS_GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&sens.0)),
        format!("{:.4}", geomean(&sens.1)),
    ]);
    write_csv("fig03_zero_latency_upper_bound", &rows)
}
