//! **§V-E cache-size sensitivity** — LATTE-CC on the 48 KB L1
//! configuration. Paper: LATTE-CC still gains ~6% on C-Sens (Static-BDI
//! ~3%): larger caches shrink but do not erase the benefit.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{experiment_config, geomean, PolicyKind};
use crate::sim;
use latte_workloads::c_sens;

/// Runs the 48 KB sensitivity study.
pub fn run() -> std::io::Result<()> {
    outln!("Cache-size sensitivity (48 KB L1, C-Sens)\n");
    let config = experiment_config().with_large_l1();
    outln!("{:6} {:>9} {:>9}", "bench", "BDI", "LATTE");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi_48k".to_owned(),
        "latte_cc_48k".to_owned(),
    ]];
    let mut bdi_spd = Vec::new();
    let mut latte_spd = Vec::new();
    let benches = c_sens();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::LatteCc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix(&policies, &benches, &config)) {
        let (base, bdi, latte) = (&runs[0], &runs[1], &runs[2]);
        let (s_bdi, s_latte) = (bdi.speedup_over(base), latte.speedup_over(base));
        outln!("{:6} {:>9.3} {:>9.3}", bench.abbr, s_bdi, s_latte);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{s_bdi:.4}"),
            format!("{s_latte:.4}"),
        ]);
        bdi_spd.push(s_bdi);
        latte_spd.push(s_latte);
    }
    outln!(
        "{:6} {:>9.3} {:>9.3}   (geomean; paper: 1.03 / 1.06)",
        "MEAN",
        geomean(&bdi_spd),
        geomean(&latte_spd)
    );
    csv.push(vec![
        "GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&bdi_spd)),
        format!("{:.4}", geomean(&latte_spd)),
    ]);
    write_csv("sens_cache_48k", &csv)
}
