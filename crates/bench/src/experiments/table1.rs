//! **Table I** — Comparison of the five compression algorithms:
//! decompression latency, exploited value locality, and the mean
//! compression ratio measured over the whole workload suite's line
//! population.

use crate::report::outln;
use crate::experiments::write_csv;
use latte_cache::LineAddr;
use latte_compress::{
    Bdi, Bpc, CompressionAlgo, Compressor, CpackZ, Fpc, Sc, VftBuilder,
};
use latte_workloads::suite;

/// Measured mean compression ratio of `algo` over sampled workload lines.
fn mean_ratio(algo: CompressionAlgo) -> f64 {
    let mut total_raw = 0usize;
    let mut total_stored = 0usize;
    for bench in suite() {
        // Sample the benchmark's address space: region-spread lines.
        let lines: Vec<_> = (0..256u64)
            .map(|i| bench.generator.line(LineAddr::new(((i % 4) << 24) | ((i * 37) % 1024))))
            .collect();
        let compressor: Box<dyn Compressor> = match algo {
            CompressionAlgo::Bdi => Box::new(Bdi::new()),
            CompressionAlgo::Fpc => Box::new(Fpc::new()),
            CompressionAlgo::CpackZ => Box::new(CpackZ::new()),
            CompressionAlgo::Bpc => Box::new(Bpc::new()),
            CompressionAlgo::Sc => {
                let mut vft = VftBuilder::new();
                for l in &lines {
                    vft.observe_line(l);
                }
                Box::new(Sc::new(vft.build()))
            }
            CompressionAlgo::None => unreachable!("table covers real algorithms"),
        };
        // Batched size probe: one dictionary/transform setup per burst.
        let mut sizes = Vec::with_capacity(lines.len());
        compressor.probe_batch(&lines, &mut sizes);
        total_raw += lines.len() * latte_compress::CacheLine::SIZE_BYTES;
        total_stored += sizes.iter().map(|c| c.size_bytes()).sum::<usize>();
    }
    total_raw as f64 / total_stored as f64
}

/// Prints Table I.
pub fn run() -> std::io::Result<()> {
    outln!("Table I: compression algorithm comparison\n");
    outln!(
        "{:10} {:>12} {:>10} {:>18} {:>12}",
        "algorithm", "decomp(cyc)", "comp(cyc)", "value locality", "mean ratio"
    );
    let locality = |a: CompressionAlgo| match a {
        CompressionAlgo::Bdi | CompressionAlgo::Fpc | CompressionAlgo::Bpc => "spatial",
        CompressionAlgo::CpackZ => "both",
        CompressionAlgo::Sc => "temporal",
        CompressionAlgo::None => "-",
    };
    let mut rows = vec![vec![
        "algorithm".to_owned(),
        "decompression_cycles".to_owned(),
        "compression_cycles".to_owned(),
        "value_locality".to_owned(),
        "mean_ratio".to_owned(),
    ]];
    for algo in CompressionAlgo::ALL {
        let ratio = mean_ratio(algo);
        outln!(
            "{:10} {:>12} {:>10} {:>18} {:>12.2}",
            algo.to_string(),
            algo.decompression_latency(),
            algo.compression_latency(),
            locality(algo),
            ratio
        );
        rows.push(vec![
            algo.to_string(),
            algo.decompression_latency().to_string(),
            algo.compression_latency().to_string(),
            locality(algo).to_owned(),
            format!("{ratio:.3}"),
        ]);
    }
    write_csv("table1_algorithms", &rows)
}
