//! **Decision trace** — a temporal view of LATTE-CC's operation on one
//! benchmark (the paper's Fig 10 schematic, rendered with real data):
//! per-EP latency tolerance, selected mode, effective capacity and hit
//! rate on SM 0.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{experiment_config, PolicyKind};
use latte_gpusim::{EpTraceEntry, Gpu, GpuConfig, Kernel};
use latte_workloads::benchmark;

fn mode_glyph(m: Option<usize>) -> char {
    match m {
        Some(0) => '.',
        Some(1) => 'L',
        Some(2) => 'H',
        _ => '?',
    }
}

/// Runs the decision trace for one benchmark (default SS).
pub fn run_for(abbr: &str) -> std::io::Result<()> {
    let Some(bench) = benchmark(abbr) else {
        eprintln!("unknown benchmark: {abbr}");
        return Ok(());
    };
    outln!(
        "LATTE-CC decision trace: {} ({}), SM 0\n",
        bench.name, bench.abbr
    );
    let config = GpuConfig {
        record_traces: true,
        ..experiment_config()
    };
    let mut gpu = Gpu::new(&config, |_| PolicyKind::LatteCc.build(&config));
    let mut traces: Vec<EpTraceEntry> = Vec::new();
    for kernel in bench.build_kernels() {
        traces.extend(gpu.run_kernel(&kernel as &dyn Kernel).traces);
    }

    // Mode strip, 64 EPs per row.
    outln!("mode per EP ('.' none, 'L' low-latency, 'H' high-capacity):");
    for (row, chunk) in traces.chunks(64).enumerate() {
        let strip: String = chunk.iter().map(|t| mode_glyph(t.selected_mode)).collect();
        outln!("  EP {:>4} | {strip}", row * 64);
    }

    // Tolerance and capacity summary per 16-EP window.
    outln!("\n{:>6} {:>10} {:>10} {:>8} {:>6}", "EP", "tolerance", "capacity", "hit%", "mode");
    let mut rows = vec![vec![
        "ep".to_owned(),
        "latency_tolerance".to_owned(),
        "effective_capacity".to_owned(),
        "l1_hit_rate".to_owned(),
        "mode".to_owned(),
    ]];
    for (ep, t) in traces.iter().enumerate() {
        if ep % 16 == 0 {
            outln!(
                "{:>6} {:>10.2} {:>9.2}x {:>7.1}% {:>6}",
                ep,
                t.latency_tolerance,
                t.effective_capacity,
                t.l1_hit_rate * 100.0,
                mode_glyph(t.selected_mode)
            );
        }
        rows.push(vec![
            ep.to_string(),
            format!("{:.4}", t.latency_tolerance),
            format!("{:.4}", t.effective_capacity),
            format!("{:.4}", t.l1_hit_rate),
            mode_glyph(t.selected_mode).to_string(),
        ]);
    }
    let switches = traces
        .windows(2)
        .filter(|w| w[0].selected_mode != w[1].selected_mode)
        .count();
    outln!("\n{} EPs, {} mode switches", traces.len(), switches);
    write_csv(&format!("trace_{}", abbr.to_lowercase()), &rows)
}

/// Default entry: trace SS.
pub fn run() -> std::io::Result<()> {
    run_for("SS")
}
