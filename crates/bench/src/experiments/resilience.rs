//! **Resilience sweep** — the simulator's answer to "what happens when
//! stored compressed lines rot?". Sweeps deterministic bit-flip injection
//! across four corruption rates (1e-6 .. 1e-3 per compressed hit) over
//! the full benchmark suite under LATTE-CC, reporting per-kernel
//! termination reasons and decode-error recovery counts, and verifying
//! that two runs with the same seed are bit-identical.
//!
//! Detected flips are recovered by re-classifying the access as a miss
//! and re-fetching from the L2, so every workload must still complete all
//! of its work; past the per-kernel demotion threshold LATTE-CC stops
//! compressing for the remainder of the kernel (integrity analogue of the
//! paper's latency fallback).

use crate::report::outln;
use crate::experiments::write_csv;
use crate::pool;
use crate::runner::{experiment_config, fault_injection, PolicyKind};
use latte_gpusim::{FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, TerminationReason};
use latte_workloads::suite;
use std::io;

const RATES: [f64; 4] = [1e-6, 1e-5, 1e-4, 1e-3];

/// Fill-return-path rates (per fill; fills are far rarer than hits, so
/// the interesting range sits higher than [`RATES`]).
const FILL_RATES: [f64; 2] = [1e-4, 1e-3];

/// Statistics of one kernel run under injection.
struct KernelRecord {
    abbr: &'static str,
    kernel: String,
    stats: KernelStats,
}

/// Runs the whole suite under LATTE-CC with bit flips at `rate` per
/// compressed L1 hit.
fn run_suite(rate: f64, seed: u64) -> Vec<KernelRecord> {
    run_suite_faults(FaultConfig::bitflips(seed, rate))
}

/// Runs the whole suite under LATTE-CC with the given fault model.
///
/// Each benchmark runs as a pool subtask. Deliberately NOT routed through
/// the simulation memo cache: the sweep's determinism self-check re-runs
/// the same configuration and must be a genuine re-execution, and fault
/// sweeps are one-shot configurations nothing else shares.
fn run_suite_faults(faults: FaultConfig) -> Vec<KernelRecord> {
    pool::run_subtasks(
        suite()
            .into_iter()
            .map(|bench| {
                Box::new(move || {
                    let config = GpuConfig {
                        faults: Some(faults),
                        ..experiment_config()
                    };
                    let mut gpu = Gpu::new(&config, |_| PolicyKind::LatteCc.build(&config));
                    bench
                        .build_kernels()
                        .iter()
                        .map(|kernel| KernelRecord {
                            abbr: bench.abbr,
                            kernel: kernel.name().to_owned(),
                            stats: gpu.run_kernel(kernel as &dyn Kernel),
                        })
                        .collect::<Vec<_>>()
                }) as Box<dyn FnOnce() -> Vec<KernelRecord> + Send>
            })
            .collect(),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Runs the resilience sweep.
pub fn run() -> std::io::Result<()> {
    let seed = fault_injection().map_or(42, |f| f.seed);
    outln!("Resilience: LATTE-CC under compressed-line bit flips (seed {seed})\n");
    outln!(
        "{:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "rate", "kernels", "complete", "injected", "detected", "masked", "refetches", "demoted*"
    );
    let mut rows = vec![vec![
        "rate".to_owned(),
        "benchmark".to_owned(),
        "kernel".to_owned(),
        "termination".to_owned(),
        "cycles".to_owned(),
        "bitflips_injected".to_owned(),
        "bitflips_detected".to_owned(),
        "bitflips_masked".to_owned(),
        "decode_failures".to_owned(),
    ]];
    for rate in RATES {
        let records = run_suite(rate, seed);
        let kernels = records.len();
        let complete = records
            .iter()
            .filter(|r| r.stats.termination == TerminationReason::Completed)
            .count();
        let injected: u64 = records.iter().map(|r| r.stats.faults.bitflips_injected).sum();
        let detected: u64 = records.iter().map(|r| r.stats.faults.bitflips_detected).sum();
        let masked: u64 = records.iter().map(|r| r.stats.faults.bitflips_masked).sum();
        let refetches: u64 = records.iter().map(|r| r.stats.l1.decode_failures).sum();
        // Kernels that crossed the decode-error demotion threshold on at
        // least one SM and finished uncompressed.
        let demoted = records
            .iter()
            .filter(|r| r.stats.l1.decode_failures >= 8)
            .count();
        outln!(
            "{rate:>9.0e} {kernels:>8} {complete:>9} {injected:>9} {detected:>9} {masked:>9} {refetches:>10} {demoted:>9}"
        );
        for r in &records {
            rows.push(vec![
                format!("{rate:e}"),
                r.abbr.to_owned(),
                r.kernel.clone(),
                r.stats.termination.to_string(),
                r.stats.cycles.to_string(),
                r.stats.faults.bitflips_injected.to_string(),
                r.stats.faults.bitflips_detected.to_string(),
                r.stats.faults.bitflips_masked.to_string(),
                r.stats.l1.decode_failures.to_string(),
            ]);
        }
        if complete != kernels {
            for r in records
                .iter()
                .filter(|r| r.stats.termination != TerminationReason::Completed)
            {
                outln!(
                    "  !! {}/{}: {} after {} cycles",
                    r.abbr, r.kernel, r.stats.termination, r.stats.cycles
                );
            }
        }
    }
    outln!("\n* kernels with >= 8 decode-error refetches (LATTE-CC's demotion threshold)");

    // Second sweep: bit flips on the L2/DRAM fill return path. These are
    // parity-detected at the L1 and recovered by a re-send one L2 round
    // trip later, so every kernel must still complete; the cost shows up
    // purely as retry latency.
    outln!("\nFill return path: bit flips per L2/DRAM fill (parity-detected, re-sent)\n");
    outln!(
        "{:>9} {:>8} {:>9} {:>11} {:>13}",
        "rate", "kernels", "complete", "fill_flips", "retry_cycles"
    );
    let mut fill_rows = vec![vec![
        "rate".to_owned(),
        "benchmark".to_owned(),
        "kernel".to_owned(),
        "termination".to_owned(),
        "cycles".to_owned(),
        "fill_bitflips".to_owned(),
        "fill_retry_cycles".to_owned(),
    ]];
    for rate in FILL_RATES {
        let records = run_suite_faults(FaultConfig::fill_bitflips(seed, rate));
        let kernels = records.len();
        let complete = records
            .iter()
            .filter(|r| r.stats.termination == TerminationReason::Completed)
            .count();
        let fill_flips: u64 = records.iter().map(|r| r.stats.faults.fill_bitflips).sum();
        let retry_cycles: u64 = records.iter().map(|r| r.stats.faults.fill_retry_cycles).sum();
        outln!("{rate:>9.0e} {kernels:>8} {complete:>9} {fill_flips:>11} {retry_cycles:>13}");
        for r in &records {
            fill_rows.push(vec![
                format!("{rate:e}"),
                r.abbr.to_owned(),
                r.kernel.clone(),
                r.stats.termination.to_string(),
                r.stats.cycles.to_string(),
                r.stats.faults.fill_bitflips.to_string(),
                r.stats.faults.fill_retry_cycles.to_string(),
            ]);
        }
        if complete != kernels {
            return Err(io::Error::other(format!(
                "fill-path injection at {rate:e} left {} kernel(s) incomplete",
                kernels - complete
            )));
        }
    }
    write_csv("resilience_fill_fault_sweep", &fill_rows)?;

    // Determinism: a second run at 1e-4 with the same seed must reproduce
    // every kernel's statistics bit for bit.
    let a = run_suite(1e-4, seed);
    let b = run_suite(1e-4, seed);
    let mismatches = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.stats != y.stats)
        .count();
    if mismatches == 0 && a.len() == b.len() {
        outln!(
            "determinism: two seed-{seed} runs at 1e-4 are bit-identical over all {} kernels",
            a.len()
        );
    } else {
        return Err(io::Error::other(format!(
            "same-seed fault runs diverged on {mismatches} kernel(s)"
        )));
    }
    write_csv("resilience_fault_sweep", &rows)
}
