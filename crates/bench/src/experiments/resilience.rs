//! **Resilience sweep** — the simulator's answer to "what happens when
//! stored compressed lines rot?". Sweeps deterministic bit-flip injection
//! across four corruption rates (1e-6 .. 1e-3 per compressed hit) over
//! the full benchmark suite under LATTE-CC, reporting per-kernel
//! termination reasons and decode-error recovery counts, and verifying
//! that two runs with the same seed are bit-identical.
//!
//! Detected flips are recovered by re-classifying the access as a miss
//! and re-fetching from the L2, so every workload must still complete all
//! of its work; past the per-kernel demotion threshold LATTE-CC stops
//! compressing for the remainder of the kernel (integrity analogue of the
//! paper's latency fallback).

use crate::experiments::write_csv;
use crate::runner::{experiment_config, fault_injection, PolicyKind};
use latte_gpusim::{FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, TerminationReason};
use latte_workloads::suite;
use std::io;

const RATES: [f64; 4] = [1e-6, 1e-5, 1e-4, 1e-3];

/// Statistics of one kernel run under injection.
struct KernelRecord {
    abbr: &'static str,
    kernel: String,
    stats: KernelStats,
}

/// Runs the whole suite under LATTE-CC with bit flips at `rate`.
fn run_suite(rate: f64, seed: u64) -> Vec<KernelRecord> {
    let mut records = Vec::new();
    for bench in suite() {
        let config = GpuConfig {
            faults: Some(FaultConfig::bitflips(seed, rate)),
            ..experiment_config()
        };
        let mut gpu = Gpu::new(config.clone(), |_| PolicyKind::LatteCc.build(&config));
        for kernel in bench.build_kernels() {
            let stats = gpu.run_kernel(&kernel as &dyn Kernel);
            records.push(KernelRecord {
                abbr: bench.abbr,
                kernel: kernel.name().to_owned(),
                stats,
            });
        }
    }
    records
}

/// Runs the resilience sweep.
pub fn run() -> std::io::Result<()> {
    let seed = fault_injection().map_or(42, |f| f.seed);
    println!("Resilience: LATTE-CC under compressed-line bit flips (seed {seed})\n");
    println!(
        "{:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "rate", "kernels", "complete", "injected", "detected", "masked", "refetches", "demoted*"
    );
    let mut rows = vec![vec![
        "rate".to_owned(),
        "benchmark".to_owned(),
        "kernel".to_owned(),
        "termination".to_owned(),
        "cycles".to_owned(),
        "bitflips_injected".to_owned(),
        "bitflips_detected".to_owned(),
        "bitflips_masked".to_owned(),
        "decode_failures".to_owned(),
    ]];
    for rate in RATES {
        let records = run_suite(rate, seed);
        let kernels = records.len();
        let complete = records
            .iter()
            .filter(|r| r.stats.termination == TerminationReason::Completed)
            .count();
        let injected: u64 = records.iter().map(|r| r.stats.faults.bitflips_injected).sum();
        let detected: u64 = records.iter().map(|r| r.stats.faults.bitflips_detected).sum();
        let masked: u64 = records.iter().map(|r| r.stats.faults.bitflips_masked).sum();
        let refetches: u64 = records.iter().map(|r| r.stats.l1.decode_failures).sum();
        // Kernels that crossed the decode-error demotion threshold on at
        // least one SM and finished uncompressed.
        let demoted = records
            .iter()
            .filter(|r| r.stats.l1.decode_failures >= 8)
            .count();
        println!(
            "{rate:>9.0e} {kernels:>8} {complete:>9} {injected:>9} {detected:>9} {masked:>9} {refetches:>10} {demoted:>9}"
        );
        for r in &records {
            rows.push(vec![
                format!("{rate:e}"),
                r.abbr.to_owned(),
                r.kernel.clone(),
                r.stats.termination.to_string(),
                r.stats.cycles.to_string(),
                r.stats.faults.bitflips_injected.to_string(),
                r.stats.faults.bitflips_detected.to_string(),
                r.stats.faults.bitflips_masked.to_string(),
                r.stats.l1.decode_failures.to_string(),
            ]);
        }
        if complete != kernels {
            for r in records
                .iter()
                .filter(|r| r.stats.termination != TerminationReason::Completed)
            {
                println!(
                    "  !! {}/{}: {} after {} cycles",
                    r.abbr, r.kernel, r.stats.termination, r.stats.cycles
                );
            }
        }
    }
    println!("\n* kernels with >= 8 decode-error refetches (LATTE-CC's demotion threshold)");

    // Determinism: a second run at 1e-4 with the same seed must reproduce
    // every kernel's statistics bit for bit.
    let a = run_suite(1e-4, seed);
    let b = run_suite(1e-4, seed);
    let mismatches = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.stats != y.stats)
        .count();
    if mismatches == 0 && a.len() == b.len() {
        println!(
            "determinism: two seed-{seed} runs at 1e-4 are bit-identical over all {} kernels",
            a.len()
        );
    } else {
        return Err(io::Error::other(format!(
            "same-seed fault runs diverged on {mismatches} kernel(s)"
        )));
    }
    write_csv("resilience_fault_sweep", &rows)
}
