//! **Figure 16** — Effective cache capacity over time for SS under
//! Static-BDI, Static-SC and LATTE-CC. Static-BDI stays near 1x (BDI
//! cannot compress SS's float data), Static-SC stays high (~3x), LATTE-CC
//! hovers between 1-2x, opportunistically taking SC capacity only during
//! tolerant phases.

use crate::report::outln;
use crate::experiments::{lookup_benchmark, write_csv};
use crate::runner::{experiment_config, PolicyKind};
use latte_gpusim::{Gpu, GpuConfig, Kernel};

fn trace(policy: PolicyKind) -> std::io::Result<Vec<f64>> {
    let bench = lookup_benchmark("SS")?;
    let config = GpuConfig {
        record_traces: true,
        ..experiment_config()
    };
    let mut gpu = Gpu::new(&config, |_| policy.build(&config));
    let mut capacities = Vec::new();
    for kernel in bench.build_kernels() {
        let stats = gpu.run_kernel(&kernel as &dyn Kernel);
        capacities.extend(stats.traces.iter().map(|t| t.effective_capacity));
    }
    Ok(capacities)
}

/// Runs the Fig 16 capacity trace.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 16: effective L1 capacity over time (SS, SM 0, 1.0 = baseline)\n");
    let policies = [PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc];
    let traces: Vec<Vec<f64>> = policies
        .iter()
        .map(|&p| trace(p))
        .collect::<std::io::Result<_>>()?;
    let len = traces.iter().map(Vec::len).min().unwrap_or(0);
    outln!("{:>6} {:>9} {:>9} {:>9}", "EP", "BDI", "SC", "LATTE");
    let mut rows = vec![vec![
        "ep".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
    ]];
    #[allow(clippy::needless_range_loop)] // parallel indexing into three traces
    for ep in 0..len {
        if ep % 8 == 0 {
            outln!(
                "{:>6} {:>9.2} {:>9.2} {:>9.2}",
                ep, traces[0][ep], traces[1][ep], traces[2][ep]
            );
        }
        rows.push(vec![
            ep.to_string(),
            format!("{:.4}", traces[0][ep]),
            format!("{:.4}", traces[1][ep]),
            format!("{:.4}", traces[2][ep]),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    outln!(
        "\nmeans: BDI {:.2}x  SC {:.2}x  LATTE {:.2}x",
        mean(&traces[0][..len]),
        mean(&traces[1][..len]),
        mean(&traces[2][..len])
    );
    write_csv("fig16_ss_effective_capacity", &rows)
}
