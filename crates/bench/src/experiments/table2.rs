//! **Table II** — The simulated GPU configuration, and the scaled
//! experiment machine actually used for the sweeps.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::experiment_config;
use latte_gpusim::GpuConfig;

fn print_config(name: &str, c: &GpuConfig, csv: &mut Vec<Vec<String>>) {
    let entries: Vec<(&str, String)> = vec![
        ("num_sms", c.num_sms.to_string()),
        ("max_warps_per_sm", c.max_warps_per_sm.to_string()),
        ("warps_per_block", c.warps_per_block.to_string()),
        ("schedulers_per_sm", c.schedulers_per_sm.to_string()),
        ("scheduler", format!("{:?}", c.scheduler)),
        (
            "l1_data_cache",
            format!(
                "{} KB/SM, 128B lines, {}-way, {}x tags",
                c.l1_geometry.size_bytes / 1024,
                c.l1_geometry.ways,
                c.l1_geometry.tag_factor
            ),
        ),
        (
            "l2_cache",
            format!(
                "{} KB shared, {}-way",
                c.l2_geometry.size_bytes / 1024,
                c.l2_geometry.ways
            ),
        ),
        ("l1_hit_latency", format!("{} cycles", c.l1_hit_latency)),
        ("min_l2_latency", format!("{} cycles", c.l2_latency)),
        ("min_dram_latency", format!("{} cycles", c.dram_latency)),
        ("mshr", format!("{} entries x {} merges", c.mshr_entries, c.mshr_merges)),
        ("ep_length", format!("{} L1 accesses", c.ep_accesses)),
    ];
    outln!("[{name}]");
    for (k, v) in &entries {
        outln!("  {k:22} {v}");
        csv.push(vec![name.to_owned(), (*k).to_owned(), v.clone()]);
    }
    outln!();
}

/// Prints Table II.
pub fn run() -> std::io::Result<()> {
    outln!("Table II: simulated GPU configurations\n");
    let mut csv = vec![vec![
        "config".to_owned(),
        "parameter".to_owned(),
        "value".to_owned(),
    ]];
    print_config("paper (Table II)", &GpuConfig::paper(), &mut csv);
    print_config("experiment machine", &experiment_config(), &mut csv);
    write_csv("table2_configuration", &csv)
}
