//! **Multi-mode extension** (beyond the paper) — arbitrate between all
//! four options (None / BDI / BPC / SC) at once, versus the paper's
//! three-mode variants. §V-E argues LATTE-CC is agnostic to its component
//! algorithms; this experiment checks whether *more* components help.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind};
use crate::sim;
use latte_workloads::c_sens;

/// Runs the multi-mode comparison.
pub fn run() -> std::io::Result<()> {
    outln!("Multi-mode extension: 3-mode (BDI+SC), 3-mode (BDI+BPC), 4-mode (C-Sens)\n");
    outln!(
        "{:6} {:>11} {:>12} {:>10}",
        "bench", "LATTE(SC)", "LATTE(BPC)", "4-mode"
    );
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "latte_bdi_sc".to_owned(),
        "latte_bdi_bpc".to_owned(),
        "latte_four_mode".to_owned(),
    ]];
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    let benches = c_sens();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::LatteCc,
        PolicyKind::LatteCcBdiBpc,
        PolicyKind::LatteCcMulti,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let base = &runs[0];
        let s: Vec<f64> = runs[1..].iter().map(|r| r.speedup_over(base)).collect();
        outln!("{:6} {:>11.3} {:>12.3} {:>10.3}", bench.abbr, s[0], s[1], s[2]);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", s[0]),
            format!("{:.4}", s[1]),
            format!("{:.4}", s[2]),
        ]);
        for (m, v) in means.iter_mut().zip(&s) {
            m.push(*v);
        }
    }
    outln!(
        "{:6} {:>11.3} {:>12.3} {:>10.3}   (geomean)",
        "MEAN",
        geomean(&means[0]),
        geomean(&means[1]),
        geomean(&means[2])
    );
    csv.push(vec![
        "GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&means[0])),
        format!("{:.4}", geomean(&means[1])),
        format!("{:.4}", geomean(&means[2])),
    ]);
    write_csv("multi_mode_extension", &csv)
}
