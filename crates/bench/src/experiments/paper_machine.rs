//! **Full-machine validation** — the Fig 11 policies re-run on the
//! unscaled Table II configuration (15 SMs, 768 KB L2) to confirm the
//! scaled experiment machine preserves the result structure.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::{geomean, PolicyKind};
use crate::sim;
use latte_gpusim::GpuConfig;
use latte_workloads::c_sens;

/// Runs the C-Sens policy comparison on the full 15-SM machine.
pub fn run() -> std::io::Result<()> {
    outln!("Full Table II machine (15 SMs): C-Sens speedups\n");
    let config = GpuConfig::paper();
    outln!("{:6} {:>9} {:>9} {:>9}", "bench", "BDI", "SC", "LATTE");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
    ]];
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    let benches = c_sens();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix(&policies, &benches, &config)) {
        let base = &runs[0];
        let s: Vec<f64> = runs[1..].iter().map(|r| r.speedup_over(base)).collect();
        outln!("{:6} {:>9.3} {:>9.3} {:>9.3}", bench.abbr, s[0], s[1], s[2]);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.4}", s[0]),
            format!("{:.4}", s[1]),
            format!("{:.4}", s[2]),
        ]);
        for (m, v) in means.iter_mut().zip(&s) {
            m.push(*v);
        }
    }
    outln!(
        "{:6} {:>9.3} {:>9.3} {:>9.3}   (geomean)",
        "MEAN",
        geomean(&means[0]),
        geomean(&means[1]),
        geomean(&means[2])
    );
    csv.push(vec![
        "GEOMEAN".to_owned(),
        format!("{:.4}", geomean(&means[0])),
        format!("{:.4}", geomean(&means[1])),
        format!("{:.4}", geomean(&means[2])),
    ]);
    write_csv("paper_machine_csens", &csv)
}
