//! **Figure 12** — L1 miss reduction under Static-BDI, Static-SC and
//! LATTE-CC. Paper shape: Static-SC reduces misses the most (~28.7% on
//! C-Sens) yet loses performance; LATTE-CC's ~24.6% reduction translates
//! into speedup because it is taken only when the latency is hideable.

use crate::report::outln;
use crate::experiments::write_csv;
use crate::runner::PolicyKind;
use crate::sim;
use latte_workloads::{suite, Category};

/// Runs the Fig 12 experiment.
pub fn run() -> std::io::Result<()> {
    outln!("Figure 12: L1 miss reduction over baseline (%)\n");
    outln!("{:6} {:>9} {:>9} {:>9}", "bench", "BDI", "SC", "LATTE");
    let mut csv = vec![vec![
        "benchmark".to_owned(),
        "static_bdi".to_owned(),
        "static_sc".to_owned(),
        "latte_cc".to_owned(),
    ]];
    let mut sens = [Vec::new(), Vec::new(), Vec::new()];
    let benches = suite();
    let policies = [
        PolicyKind::Baseline,
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    for (bench, runs) in benches.iter().zip(sim::run_matrix_default(&policies, &benches)) {
        let base = &runs[0];
        let mr: Vec<f64> = runs[1..]
            .iter()
            .map(|r| r.miss_reduction_over(base) * 100.0)
            .collect();
        outln!("{:6} {:>8.1}% {:>8.1}% {:>8.1}%", bench.abbr, mr[0], mr[1], mr[2]);
        csv.push(vec![
            bench.abbr.to_owned(),
            format!("{:.2}", mr[0]),
            format!("{:.2}", mr[1]),
            format!("{:.2}", mr[2]),
        ]);
        if bench.category == Category::CSens {
            for (s, v) in sens.iter_mut().zip(&mr) {
                s.push(*v);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    outln!(
        "{:6} {:>8.1}% {:>8.1}% {:>8.1}%   (C-Sens arithmetic mean)",
        "MEAN",
        mean(&sens[0]),
        mean(&sens[1]),
        mean(&sens[2])
    );
    csv.push(vec![
        "CSENS_MEAN".to_owned(),
        format!("{:.2}", mean(&sens[0])),
        format!("{:.2}", mean(&sens[1])),
        format!("{:.2}", mean(&sens[2])),
    ]);
    write_csv("fig12_miss_reduction", &csv)
}
