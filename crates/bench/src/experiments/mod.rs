//! One module per table/figure of the paper's evaluation. Each module
//! exposes `run()`, prints a human-readable table to stdout, and writes a
//! CSV into `results/`.

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod multi_mode;
pub mod paper_machine;
pub mod resilience;
pub mod sens_cache;
pub mod sens_write;
pub mod summary;
pub mod table1;
pub mod trace;
pub mod table2;
pub mod table3;

use std::fmt::Display;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Writes `rows` (first row = header) to `results/<name>.csv`.
///
/// # Errors
///
/// Returns any I/O error from creating the results directory or writing
/// the file; the experiment driver reports it and moves on to the next
/// experiment instead of aborting the whole run.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> io::Result<()> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let body: String = rows
        .iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n");
    fs::write(&path, body + "\n")?;
    println!("[wrote {}]", path.display());
    Ok(())
}

/// Formats a row of cells with a fixed column width.
pub fn row<D: Display>(cells: &[D], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}
