//! One module per table/figure of the paper's evaluation. Each module
//! exposes `run()`, prints a human-readable table to stdout, and writes a
//! CSV into `results/`.

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig_writeback;
pub mod multi_mode;
pub mod paper_machine;
pub mod resilience;
pub mod sens_cache;
pub mod sens_write;
pub mod summary;
pub mod table1;
pub mod trace;
pub mod table2;
pub mod table3;
pub mod verify;

use crate::report::outln;
use std::fmt::Display;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::RwLock;

/// Process-wide override of the `results/` output directory (used by the
/// determinism test suite to compare independent runs). `None` means the
/// default relative `results/` directory.
static RESULTS_DIR: RwLock<Option<PathBuf>> = RwLock::new(None);

/// Redirects all experiment CSV output to `dir` for the rest of the
/// process (pass `None` to restore the default `results/`).
pub fn set_results_dir(dir: Option<PathBuf>) {
    if let Ok(mut slot) = RESULTS_DIR.write() {
        *slot = dir;
    }
}

/// The directory experiment CSVs are written to.
#[must_use]
pub fn results_dir() -> PathBuf {
    RESULTS_DIR
        .read()
        .ok()
        .and_then(|slot| slot.clone())
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes `rows` (first row = header) to `<results_dir>/<name>.csv`.
///
/// The write is atomic: the body goes to a temp file in the same
/// directory which is then renamed over the final name, so a reader (or
/// a crashed run) never observes a half-written CSV and parallel driver
/// workers never interleave within one file. Experiment names are
/// unique, so the temp name cannot collide across workers.
///
/// # Errors
///
/// Returns any I/O error from creating the results directory or writing
/// the file; the experiment driver reports it and moves on to the next
/// experiment instead of aborting the whole run.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> io::Result<()> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let tmp = dir.join(format!(".{name}.csv.tmp"));
    let body: String = rows
        .iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n");
    // latte-lint: allow(F1, reason = "this IS the temp+rename pattern: the write targets the temp name and the next line renames it over the final path")
    fs::write(&tmp, body + "\n")?;
    fs::rename(&tmp, &path)?;
    outln!("[wrote {}]", path.display());
    Ok(())
}

/// Looks up a benchmark by abbreviation, failing with a typed I/O error
/// instead of panicking (bench library code is covered by the clippy
/// `unwrap_used`/`expect_used` gate).
///
/// # Errors
///
/// Returns [`io::ErrorKind::NotFound`] when no suite benchmark matches.
pub fn lookup_benchmark(abbr: &str) -> io::Result<latte_workloads::BenchmarkSpec> {
    latte_workloads::benchmark(abbr).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("unknown benchmark abbreviation: {abbr}"),
        )
    })
}

/// Formats a row of cells with a fixed column width.
pub fn row<D: Display>(cells: &[D], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}
