//! Wall-clock bookkeeping behind the `--timings` flag.
//!
//! This module is deliberately the **only** place in the workspace's
//! non-test code that reads a clock. The simulation crates model time as
//! cycles and must stay wall-clock-free so results are a pure function
//! of their inputs (lint rule D1 enforces this for the sim crates); the
//! bench binary is the one component that may observe real time, and it
//! funnels every such read through [`Stopwatch`] here so the boundary
//! stays auditable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Whether `--timings` was passed: gates *printing* the report, not
/// collection (recording a label and an `f64` per simulation is far too
/// cheap to branch on).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the end-of-run timing report (`--timings`).
pub fn set_report_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
    if on {
        install_compressor_clock();
    }
}

/// Installs this binary's monotonic clock into the compress crate's
/// operation counters, so the `--timings` report can split cumulative
/// compressor time by stage (probe vs full encode vs decode). The
/// compress crate itself stays wall-clock-free (lint rule D1); it only
/// ever sees the injected function below. Idempotent: the first
/// installation wins.
pub fn install_compressor_clock() {
    fn monotonic_ns() -> u64 {
        static BASELINE: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        let base = *BASELINE.get_or_init(Instant::now);
        u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
    // Prime the baseline so the first sample isn't measured against itself.
    let _ = monotonic_ns();
    latte_compress::stats::install_clock(monotonic_ns);
    // The epoch-barrier scheduler shares the same injected clock so its
    // per-thread busy/stall split lands in the same time base. Like the
    // compressor counters, gpusim itself never reads a clock (rule D1).
    latte_gpusim::install_epoch_clock(monotonic_ns);
}

/// Returns whether the end-of-run timing report was requested.
pub fn report_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// A started wall-clock measurement.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        // latte-lint: allow(T1, reason = "the bench driver's single wall-clock read; elapsed times go to host-time report columns only and never feed back into simulated results")
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// One timed simulation compute (cache hits are not re-timed; replaying
/// a memoized result costs microseconds).
#[derive(Debug, Clone)]
struct SimRecord {
    label: String,
    secs: f64,
}

static SIM_TIMES: Mutex<Vec<SimRecord>> = Mutex::new(Vec::new());

/// Records the wall time of one simulation compute. `label` should
/// identify the job, e.g. `"Baseline/NW"` or `"LatteCC/KM [cfg 3f2a]"`.
pub fn record_sim(label: String, secs: f64) {
    let mut times = SIM_TIMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    times.push(SimRecord { label, secs });
}

/// Drains and returns all recorded sim timings as `(label, secs)`,
/// slowest first. Used by the report printer and by tests.
pub fn take_sim_times() -> Vec<(String, f64)> {
    let mut times = std::mem::take(
        &mut *SIM_TIMES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    times.sort_by(|a, b| b.secs.total_cmp(&a.secs).then_with(|| a.label.cmp(&b.label)));
    times.into_iter().map(|r| (r.label, r.secs)).collect()
}

/// Epoch-barrier telemetry accumulated across every parallel simulation
/// of the run (`Option` because [`latte_gpusim::EpochStats`] owns
/// per-thread vectors and has no `const` constructor).
static EPOCH: Mutex<Option<latte_gpusim::EpochStats>> = Mutex::new(None);

/// Folds one simulation's epoch-barrier telemetry into the run-wide
/// accumulator. Serial runs produce zero epochs and are skipped, so the
/// report section only appears when `--sim-threads` actually sharded
/// something.
pub fn record_epoch_stats(stats: &latte_gpusim::EpochStats) {
    if stats.epochs == 0 {
        return;
    }
    let mut slot = EPOCH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    slot.get_or_insert_with(latte_gpusim::EpochStats::default)
        .merge(stats);
}

/// Drains the run-wide epoch-barrier telemetry, if any parallel
/// simulation recorded some. Used by the report printer and by tests.
pub fn take_epoch_stats() -> Option<latte_gpusim::EpochStats> {
    EPOCH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
}

/// Prints the `--timings` report to stdout: per-experiment wall time
/// (slowest first), then per-sim-job compute time, then the simulation
/// cache's counters (split by tier: in-process replay vs store memory
/// vs store disk vs computed), then — when a persistent store is
/// configured — the store's write/quarantine/fault counters, then the
/// cumulative compressor work split by stage (probe/encode/decode).
///
/// `experiments` is `(name, secs)` per completed experiment; `cache` is
/// the simulation service's counters.
pub fn print_report(experiments: &[(&str, f64)], cache: &crate::sim::SimStats) {
    let mut exps: Vec<&(&str, f64)> = experiments.iter().collect();
    exps.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    println!("==================== timings ====================");
    println!("experiments ({} total, slowest first):", exps.len());
    for (name, secs) in exps {
        println!("  {secs:>8.2}s  {name}");
    }

    let sims = take_sim_times();
    // `+ 0.0` normalises the -0.0 an empty float sum starts from, which
    // would otherwise print as "-0.00s".
    let total: f64 = sims.iter().map(|(_, s)| s).sum::<f64>() + 0.0;
    println!(
        "simulation jobs ({} computed, {:.2}s simulating, slowest first):",
        sims.len(),
        total
    );
    const SHOWN: usize = 25;
    for (label, secs) in sims.iter().take(SHOWN) {
        println!("  {secs:>8.2}s  {label}");
    }
    if sims.len() > SHOWN {
        println!("  ... and {} more under {:.2}s", sims.len() - SHOWN, sims[SHOWN - 1].1);
    }

    let pct = if cache.requests == 0 {
        0.0
    } else {
        100.0 * cache.hits() as f64 / cache.requests as f64
    };
    println!(
        "sim cache: {} requests, {} hits ({pct:.0}%): {} memory, {} store-memory, \
         {} store-disk; {} computed",
        cache.requests,
        cache.hits(),
        cache.replay_hits,
        cache.store_mem_hits,
        cache.store_disk_hits,
        cache.computed
    );
    if cache.recomputed > 0 || cache.spills > 0 {
        println!(
            "sim cache: {} spilled to store, {} recomputed after a lost spill",
            cache.spills, cache.recomputed
        );
    }

    if let Some(store) = crate::sim::store_stats() {
        println!(
            "store: {} durable writes, {} dropped, {} write failures; {} quarantined, \
             {} missing, {} adopted, {} torn removed",
            store.durable_writes,
            store.dropped_writes,
            store.write_failures,
            store.quarantined,
            store.missing,
            store.adopted,
            store.torn_removed
        );
        println!(
            "store: hot tier {} hits, {} admission-rejected, {} evicted; \
             disk tier {} reads; {} fault(s) injected",
            store.mem_hits,
            store.admission_rejects,
            store.evictions,
            store.disk_hits,
            store.injected_faults
        );
    }
    if cache.verify_failures > 0 {
        println!(
            "store verify: {} stored record(s) diverged from recompute",
            cache.verify_failures
        );
    }

    let comp = latte_compress::stats::snapshot();
    if comp.total_ops() > 0 {
        let secs = |ns: u64| ns as f64 / 1e9;
        println!(
            "compressors: {} size probes ({:.2}s), {} full encodes ({:.2}s), \
             {} decodes ({:.2}s)",
            comp.probe_ops,
            secs(comp.probe_ns),
            comp.encode_ops,
            secs(comp.encode_ns),
            comp.decode_ops,
            secs(comp.decode_ns)
        );
    }

    if let Some(epoch) = take_epoch_stats() {
        let secs = |ns: u64| ns as f64 / 1e9;
        println!(
            "epoch barrier: {} epochs over {} simulated cycles \
             (mean {:.1} cycles/epoch, longest {}), {} shard(s)",
            epoch.epochs,
            epoch.advanced_cycles,
            epoch.mean_epoch_cycles(),
            epoch.max_epoch_cycles,
            epoch.shards
        );
        for (i, (&busy, &stall)) in epoch.busy_ns.iter().zip(&epoch.stall_ns).enumerate() {
            let span = busy + stall;
            let pct = if span == 0 {
                0.0
            } else {
                100.0 * stall as f64 / span as f64
            };
            println!(
                "  thread {i}: {:>8.2}s busy, {:>8.2}s barrier stall ({pct:.0}%)",
                secs(busy),
                secs(stall)
            );
        }
    }

    let shadow = crate::runner::shadow_tally();
    if shadow.sims > 0 {
        // Overhead is visible directly above: shadow-checked jobs carry a
        // "[shadow]" label suffix in the per-job times.
        println!(
            "shadow check: {} sims, {} loads checked, {} checkpoints, {} violation(s)",
            shadow.sims, shadow.loads_checked, shadow.checkpoints, shadow.violations
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_secs() > 0.0);
    }

    #[test]
    fn sim_times_drain_sorted() {
        // Use labels unlikely to collide with other tests' records; the
        // registry is process-global and tests run concurrently.
        record_sim("timing-test/slow".to_owned(), 123_456.0);
        record_sim("timing-test/fast".to_owned(), 123_455.0);
        let times = take_sim_times();
        let slow = times.iter().position(|(l, _)| l == "timing-test/slow");
        let fast = times.iter().position(|(l, _)| l == "timing-test/fast");
        match (slow, fast) {
            (Some(s), Some(f)) => assert!(s < f, "slowest must sort first"),
            _ => panic!("records missing from drained registry"),
        }
    }

    #[test]
    fn report_enable_round_trips() {
        let before = report_enabled();
        set_report_enabled(true);
        assert!(report_enabled());
        set_report_enabled(before);
    }
}
