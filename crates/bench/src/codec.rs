//! A versioned binary codec for simulation outcomes
//! ([`BenchResult`] plus its captured diagnostics), used as the store
//! payload format.
//!
//! Hand-rolled little-endian writer/reader — the workspace has no serde
//! and takes no new dependencies. Two principles:
//!
//! * **Self-contained versioning.** The payload leads with a codec
//!   version; any mismatch is a typed error, which the simulation
//!   service treats as a miss. (Defense in depth: the store key already
//!   folds in [`latte_gpusim::FINGERPRINT_SCHEMA_VERSION`], so a layout
//!   change normally changes the key and old records are simply never
//!   requested.)
//! * **Decode is validation.** Every tag and length is checked, the
//!   decoded identity (benchmark abbreviation, policy) must match what
//!   the caller asked for, and trailing bytes are an error. A payload
//!   that decodes is exactly a result this binary could have produced.

use crate::runner::{BenchResult, PolicyKind};
use latte_cache::{CacheStats, LineAddr};
use latte_compress::CompressionAlgo;
use latte_energy::EnergyReport;
use latte_gpusim::{
    AlgoCounts, EpTraceEntry, FaultStats, KernelStats, PolicyReport, ShadowViolation,
    ShadowViolationKind, TerminationReason,
};
use latte_oracle::OracleReport;
use latte_workloads::BenchmarkSpec;
use std::fmt;

/// Bump on ANY change to the encoded layout, alongside
/// [`latte_gpusim::FINGERPRINT_SCHEMA_VERSION`].
/// v2: `writebacks` kernel counter, write-back fault counters
/// (`writeback_faults`/`writeback_retry_cycles`/`writebacks_dropped`),
/// Assist-Warp policy tag.
pub const CODEC_VERSION: u32 = 2;

/// Everything that can be wrong with a stored payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Encoded by a different codec version.
    BadVersion(u32),
    /// An enum tag or flag byte is out of range.
    BadTag {
        /// Which field the tag belongs to.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A string field is not UTF-8.
    BadUtf8,
    /// The stored result is for a different benchmark than requested.
    BenchMismatch {
        /// Abbreviation found in the payload.
        found: String,
    },
    /// The stored result is for a different policy than requested.
    PolicyMismatch {
        /// Policy found in the payload.
        found: PolicyKind,
    },
    /// Bytes left over after a complete decode.
    TrailingBytes {
        /// How many bytes remain.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadVersion(v) => {
                write!(f, "codec version {v} (current {CODEC_VERSION})")
            }
            CodecError::BadTag { what, value } => write!(f, "bad {what} tag {value}"),
            CodecError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            CodecError::BenchMismatch { found } => {
                write!(f, "payload is for benchmark {found:?}")
            }
            CodecError::PolicyMismatch { found } => {
                write!(f, "payload is for policy {found:?}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s)")
            }
        }
    }
}

/// Algorithm order for [`AlgoCounts`]: `None` first, then the real
/// algorithms in `CompressionAlgo::ALL` order. Part of the format.
const ALGO_ORDER: [CompressionAlgo; 6] = [
    CompressionAlgo::None,
    CompressionAlgo::Bdi,
    CompressionAlgo::Fpc,
    CompressionAlgo::CpackZ,
    CompressionAlgo::Bpc,
    CompressionAlgo::Sc,
];

pub(crate) fn policy_tag(policy: PolicyKind) -> u8 {
    match policy {
        PolicyKind::Baseline => 0,
        PolicyKind::StaticBdi => 1,
        PolicyKind::StaticSc => 2,
        PolicyKind::StaticBpc => 3,
        PolicyKind::LatteCc => 4,
        PolicyKind::LatteCcBdiBpc => 5,
        PolicyKind::LatteCcMulti => 6,
        PolicyKind::AdaptiveHitCount => 7,
        PolicyKind::AdaptiveCmp => 8,
        PolicyKind::AssistWarp => 9,
    }
}

fn policy_from_tag(tag: u8) -> Option<PolicyKind> {
    Some(match tag {
        0 => PolicyKind::Baseline,
        1 => PolicyKind::StaticBdi,
        2 => PolicyKind::StaticSc,
        3 => PolicyKind::StaticBpc,
        4 => PolicyKind::LatteCc,
        5 => PolicyKind::LatteCcBdiBpc,
        6 => PolicyKind::LatteCcMulti,
        7 => PolicyKind::AdaptiveHitCount,
        8 => PolicyKind::AdaptiveCmp,
        9 => PolicyKind::AssistWarp,
        _ => return None,
    })
}

fn termination_tag(t: TerminationReason) -> u8 {
    match t {
        TerminationReason::Completed => 0,
        TerminationReason::CycleLimit => 1,
        TerminationReason::Deadlock => 2,
        TerminationReason::FaultAbort => 3,
    }
}

fn termination_from_tag(tag: u8) -> Option<TerminationReason> {
    Some(match tag {
        0 => TerminationReason::Completed,
        1 => TerminationReason::CycleLimit,
        2 => TerminationReason::Deadlock,
        3 => TerminationReason::FaultAbort,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
    fn algo_counts(&mut self, c: &AlgoCounts) {
        for algo in ALGO_ORDER {
            self.u64(c.get(algo));
        }
    }
    fn cache_stats(&mut self, s: &CacheStats) {
        self.u64(s.hits);
        self.u64(s.compressed_hits);
        self.u64(s.misses);
        self.u64(s.fills);
        self.u64(s.compressed_fills);
        self.u64(s.evictions);
        self.u64(s.filled_bytes_uncompressed);
        self.u64(s.filled_bytes_stored);
        self.u64(s.decode_failures);
    }
}

/// Serializes one outcome (result + captured diagnostics).
#[must_use]
pub fn encode_outcome(result: &BenchResult, diag: &str) -> Vec<u8> {
    let mut w = Writer {
        out: Vec::with_capacity(1024 + diag.len()),
    };
    w.u32(CODEC_VERSION);
    w.u8(policy_tag(result.policy));
    w.str(result.abbr);

    let s = &result.stats;
    w.u64(s.cycles);
    w.u64(s.instructions);
    w.cache_stats(&s.l1);
    w.cache_stats(&s.l2);
    w.u64(s.dram_accesses);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.writebacks);
    w.algo_counts(&s.compressions);
    w.algo_counts(&s.decompressions);
    w.u64(s.mshr_stalls);
    w.u64(s.hit_wait_cycles);
    w.u64(s.miss_wait_cycles);
    w.u64(s.barrier_wait_cycles);
    w.u64(s.eps_completed);
    w.u64(s.decompression_queue_wait);
    w.u64(s.traces.len() as u64);
    for t in &s.traces {
        w.u64(t.ep_index);
        w.u64(t.end_cycle);
        w.f64(t.latency_tolerance);
        w.f64(t.effective_capacity);
        w.f64(t.l1_hit_rate);
        w.opt_u64(t.selected_mode.map(|m| m as u64));
    }
    w.u8(u8::from(s.timed_out));
    w.u8(termination_tag(s.termination));
    let f = &s.faults;
    for v in [
        f.bitflips_injected,
        f.bitflips_detected,
        f.bitflips_masked,
        f.tag_corruptions,
        f.latency_spikes,
        f.spike_cycles_added,
        f.mshr_exhaustions,
        f.fill_bitflips,
        f.fill_retry_cycles,
        f.wakeup_drops,
        f.writeback_faults,
        f.writeback_retry_cycles,
        f.writebacks_dropped,
    ] {
        w.u64(v);
    }

    let e = &result.energy;
    for v in [
        e.core_nj,
        e.l1_nj,
        e.l2_nj,
        e.dram_nj,
        e.noc_nj,
        e.compression_nj,
        e.decompression_nj,
        e.static_nj,
    ] {
        w.f64(v);
    }

    w.u64(result.reports.len() as u64);
    for r in &result.reports {
        for m in r.eps_in_mode {
            w.u64(m);
        }
    }

    match &result.shadow {
        None => w.u8(0),
        Some(o) => {
            w.u8(1);
            w.u64(o.loads_checked);
            w.u64(o.fills_observed);
            w.u64(o.stores_observed);
            w.u64(o.checkpoints);
            w.u64(o.violations_total);
            w.u64(o.violations.len() as u64);
            for v in &o.violations {
                w.u64(v.sm as u64);
                w.u64(v.cycle);
                w.opt_u64(v.addr.map(LineAddr::line_number));
                w.u8(match v.kind {
                    ShadowViolationKind::DataIntegrity => 0,
                    ShadowViolationKind::Structural => 1,
                });
                w.str(&v.detail);
            }
        }
    }

    w.str(diag);
    w.out
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(CodecError::BadTag {
                what: "option",
                value: u64::from(v),
            }),
        }
    }
    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
    /// A length prefix, sanity-bounded by the bytes actually remaining
    /// so corrupt lengths fail fast instead of attempting huge
    /// allocations.
    fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(CodecError::Truncated);
        }
        Ok(len as usize)
    }
    fn algo_counts(&mut self) -> Result<AlgoCounts, CodecError> {
        let mut c = AlgoCounts::default();
        for algo in ALGO_ORDER {
            c.add(algo, self.u64()?);
        }
        Ok(c)
    }
    fn cache_stats(&mut self) -> Result<CacheStats, CodecError> {
        Ok(CacheStats {
            hits: self.u64()?,
            compressed_hits: self.u64()?,
            misses: self.u64()?,
            fills: self.u64()?,
            compressed_fills: self.u64()?,
            evictions: self.u64()?,
            filled_bytes_uncompressed: self.u64()?,
            filled_bytes_stored: self.u64()?,
            decode_failures: self.u64()?,
        })
    }
}

/// Decodes an outcome, validating it is for exactly the requested
/// `(policy, bench)`. Returns the result (with `bench`'s `'static`
/// abbreviation, after matching it against the stored one) and the
/// captured diagnostics.
///
/// # Errors
///
/// Any structural problem or identity mismatch; see [`CodecError`].
/// Callers treat every error as a cache miss.
pub fn decode_outcome(
    bytes: &[u8],
    policy: PolicyKind,
    bench: &BenchmarkSpec,
) -> Result<(BenchResult, String), CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u32()?;
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let stored_policy = {
        let tag = r.u8()?;
        policy_from_tag(tag).ok_or(CodecError::BadTag {
            what: "policy",
            value: u64::from(tag),
        })?
    };
    if stored_policy != policy {
        return Err(CodecError::PolicyMismatch {
            found: stored_policy,
        });
    }
    let stored_abbr = r.str()?;
    if stored_abbr != bench.abbr {
        return Err(CodecError::BenchMismatch { found: stored_abbr });
    }

    let mut stats = KernelStats {
        cycles: r.u64()?,
        instructions: r.u64()?,
        l1: r.cache_stats()?,
        l2: r.cache_stats()?,
        dram_accesses: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
        writebacks: r.u64()?,
        compressions: r.algo_counts()?,
        decompressions: r.algo_counts()?,
        mshr_stalls: r.u64()?,
        hit_wait_cycles: r.u64()?,
        miss_wait_cycles: r.u64()?,
        barrier_wait_cycles: r.u64()?,
        eps_completed: r.u64()?,
        decompression_queue_wait: r.u64()?,
        ..KernelStats::default()
    };
    let n_traces = r.len_prefix()?;
    let mut traces = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        traces.push(EpTraceEntry {
            ep_index: r.u64()?,
            end_cycle: r.u64()?,
            latency_tolerance: r.f64()?,
            effective_capacity: r.f64()?,
            l1_hit_rate: r.f64()?,
            selected_mode: r.opt_u64()?.map(|m| m as usize),
        });
    }
    stats.traces = traces;
    stats.timed_out = match r.u8()? {
        0 => false,
        1 => true,
        v => {
            return Err(CodecError::BadTag {
                what: "timed_out",
                value: u64::from(v),
            })
        }
    };
    stats.termination = {
        let tag = r.u8()?;
        termination_from_tag(tag).ok_or(CodecError::BadTag {
            what: "termination",
            value: u64::from(tag),
        })?
    };
    stats.faults = FaultStats {
        bitflips_injected: r.u64()?,
        bitflips_detected: r.u64()?,
        bitflips_masked: r.u64()?,
        tag_corruptions: r.u64()?,
        latency_spikes: r.u64()?,
        spike_cycles_added: r.u64()?,
        mshr_exhaustions: r.u64()?,
        fill_bitflips: r.u64()?,
        fill_retry_cycles: r.u64()?,
        wakeup_drops: r.u64()?,
        writeback_faults: r.u64()?,
        writeback_retry_cycles: r.u64()?,
        writebacks_dropped: r.u64()?,
    };

    let energy = EnergyReport {
        core_nj: r.f64()?,
        l1_nj: r.f64()?,
        l2_nj: r.f64()?,
        dram_nj: r.f64()?,
        noc_nj: r.f64()?,
        compression_nj: r.f64()?,
        decompression_nj: r.f64()?,
        static_nj: r.f64()?,
    };

    let n_reports = r.len_prefix()?;
    let mut reports = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        reports.push(PolicyReport {
            eps_in_mode: [r.u64()?, r.u64()?, r.u64()?],
        });
    }

    let shadow = match r.u8()? {
        0 => None,
        1 => {
            let loads_checked = r.u64()?;
            let fills_observed = r.u64()?;
            let stores_observed = r.u64()?;
            let checkpoints = r.u64()?;
            let violations_total = r.u64()?;
            let n_violations = r.len_prefix()?;
            let mut violations = Vec::with_capacity(n_violations);
            for _ in 0..n_violations {
                violations.push(ShadowViolation {
                    sm: r.u64()? as usize,
                    cycle: r.u64()?,
                    addr: r.opt_u64()?.map(LineAddr::new),
                    kind: match r.u8()? {
                        0 => ShadowViolationKind::DataIntegrity,
                        1 => ShadowViolationKind::Structural,
                        v => {
                            return Err(CodecError::BadTag {
                                what: "violation kind",
                                value: u64::from(v),
                            })
                        }
                    },
                    detail: r.str()?,
                });
            }
            Some(OracleReport {
                loads_checked,
                fills_observed,
                stores_observed,
                checkpoints,
                violations_total,
                violations,
            })
        }
        v => {
            return Err(CodecError::BadTag {
                what: "shadow option",
                value: u64::from(v),
            })
        }
    };

    let diag = r.str()?;
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes {
            remaining: bytes.len() - r.pos,
        });
    }
    Ok((
        BenchResult {
            abbr: bench.abbr,
            policy,
            stats,
            energy,
            reports,
            shadow,
        },
        diag,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_gpusim::GpuConfig;

    fn nw() -> BenchmarkSpec {
        latte_workloads::benchmark("NW").expect("NW exists")
    }

    fn sample_result(bench: &BenchmarkSpec) -> BenchResult {
        // A genuinely simulated result exercises every field population
        // path (including nonzero cache stats and energy).
        crate::runner::run_benchmark_uncached(
            PolicyKind::StaticBdi,
            bench,
            &GpuConfig {
                num_sms: 1,
                ..GpuConfig::small()
            },
        )
    }

    fn enriched(bench: &BenchmarkSpec) -> BenchResult {
        // Layer on the optional parts a plain run leaves empty.
        let mut result = sample_result(bench);
        result.stats.traces = vec![
            EpTraceEntry {
                ep_index: 3,
                end_cycle: 4096,
                latency_tolerance: 1.25,
                effective_capacity: 1.75,
                l1_hit_rate: 0.5,
                selected_mode: Some(2),
            },
            EpTraceEntry {
                ep_index: 4,
                end_cycle: 8192,
                latency_tolerance: f64::INFINITY,
                effective_capacity: 0.0,
                l1_hit_rate: 0.0,
                selected_mode: None,
            },
        ];
        result.stats.timed_out = true;
        result.stats.termination = TerminationReason::CycleLimit;
        result.stats.faults.bitflips_injected = 7;
        result.shadow = Some(OracleReport {
            loads_checked: 100,
            fills_observed: 50,
            stores_observed: 25,
            checkpoints: 9,
            violations_total: 2,
            violations: vec![
                ShadowViolation {
                    sm: 1,
                    cycle: 777,
                    addr: Some(LineAddr::new(0xabc)),
                    kind: ShadowViolationKind::DataIntegrity,
                    detail: "byte 3 differs".to_owned(),
                },
                ShadowViolation {
                    sm: 0,
                    cycle: 999,
                    addr: None,
                    kind: ShadowViolationKind::Structural,
                    detail: "MSHR leak".to_owned(),
                },
            ],
        });
        result
    }

    fn assert_results_equal(a: &BenchResult, b: &BenchResult) {
        assert_eq!(a.abbr, b.abbr);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.reports, b.reports);
        assert_eq!(
            format!("{:?}", a.shadow),
            format!("{:?}", b.shadow),
            "shadow reports differ"
        );
        // Energy must round-trip bit-exactly (CSV output depends on it).
        for (x, y) in [
            (a.energy.core_nj, b.energy.core_nj),
            (a.energy.l1_nj, b.energy.l1_nj),
            (a.energy.l2_nj, b.energy.l2_nj),
            (a.energy.dram_nj, b.energy.dram_nj),
            (a.energy.noc_nj, b.energy.noc_nj),
            (a.energy.compression_nj, b.energy.compression_nj),
            (a.energy.decompression_nj, b.energy.decompression_nj),
            (a.energy.static_nj, b.energy.static_nj),
        ] {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let bench = nw();
        let result = enriched(&bench);
        let diag = "watchdog: something\n[shadow] NW/Static-BDI: ...\n";
        let bytes = encode_outcome(&result, diag);
        let (decoded, decoded_diag) =
            decode_outcome(&bytes, PolicyKind::StaticBdi, &bench).expect("round trip");
        assert_results_equal(&result, &decoded);
        assert_eq!(diag, decoded_diag);
        // Re-encoding the decoded result is byte-identical: the format
        // has one canonical serialization.
        assert_eq!(bytes, encode_outcome(&decoded, &decoded_diag));
    }

    #[test]
    fn identity_mismatches_are_rejected() {
        let bench = nw();
        let result = sample_result(&bench);
        let bytes = encode_outcome(&result, "");
        assert!(matches!(
            decode_outcome(&bytes, PolicyKind::Baseline, &bench),
            Err(CodecError::PolicyMismatch { .. })
        ));
        let other = latte_workloads::benchmark("BFS").expect("BFS exists");
        assert!(matches!(
            decode_outcome(&bytes, PolicyKind::StaticBdi, &other),
            Err(CodecError::BenchMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let bench = nw();
        let mut bytes = encode_outcome(&sample_result(&bench), "");
        bytes[0..4].copy_from_slice(&(CODEC_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_outcome(&bytes, PolicyKind::StaticBdi, &bench),
            Err(CodecError::BadVersion(v)) if v == CODEC_VERSION + 1
        ));
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bench = nw();
        let bytes = encode_outcome(&enriched(&bench), "diagnostics text");
        for len in 0..bytes.len() {
            assert!(
                decode_outcome(&bytes[..len], PolicyKind::StaticBdi, &bench).is_err(),
                "truncation to {len} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bench = nw();
        let mut bytes = encode_outcome(&sample_result(&bench), "");
        bytes.push(0);
        assert!(matches!(
            decode_outcome(&bytes, PolicyKind::StaticBdi, &bench),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn huge_length_prefix_fails_without_allocating() {
        let bench = nw();
        let result = sample_result(&bench);
        let mut bytes = encode_outcome(&result, "");
        // Overwrite the trace-count length prefix region with a huge
        // value: find the diag length at the very end instead — easier
        // and equally structural. The last 8 bytes before the (empty)
        // diag payload are its length prefix.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_outcome(&bytes, PolicyKind::StaticBdi, &bench),
            Err(CodecError::Truncated)
        ));
    }
}
