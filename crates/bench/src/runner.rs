//! Benchmark runners: execute a [`BenchmarkSpec`] under a compression
//! management policy and collect aggregate statistics.

use crate::report::outln;
use latte_core::{
    AdaptiveCmp, AdaptiveHitCount, AssistWarp, CompressionMode, HighCapacityAlgo, LatteCc,
    LatteCcMulti, LatteConfig, MultiConfig, StaticBdi, StaticBpc, StaticSc,
};
use latte_energy::{EnergyModel, EnergyReport};
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, ShadowConfig,
    UncompressedPolicy,
};
use latte_oracle::{MemoryOracle, OracleReport};
use latte_workloads::BenchmarkSpec;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide intra-simulation thread count, set from the
/// `--sim-threads` command-line flag (default 1 = the serial loop).
/// Unlike the write-once [`FAULT_INJECTION`] style globals this is a
/// plain atomic: the epoch-barrier loop is byte-identical to the serial
/// one for every value, so flipping it mid-process (as the determinism
/// tests do) can never change a result — only how fast it arrives.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker-thread count each simulation's cycle loop uses
/// (`--sim-threads`). Values are clamped per-config by the simulator;
/// `0`/`1` mean the unchanged serial path.
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), Ordering::SeqCst);
}

/// The current intra-simulation thread count (see [`set_sim_threads`]).
#[must_use]
pub fn sim_threads() -> usize {
    SIM_THREADS.load(Ordering::SeqCst)
}

/// Process-wide fault-injection override, set once from the `--inject`
/// command-line flag. Experiments build their own [`GpuConfig`]s in many
/// places; routing the override through [`run_benchmark_with_config`]
/// means every experiment picks it up without plumbing a parameter
/// through two dozen signatures.
static FAULT_INJECTION: OnceLock<FaultConfig> = OnceLock::new();

/// Enables fault injection for every subsequent benchmark run in this
/// process. Returns `false` if injection was already configured (the
/// first configuration wins).
pub fn set_fault_injection(config: FaultConfig) -> bool {
    FAULT_INJECTION.set(config).is_ok()
}

/// The process-wide fault-injection override, if `--inject` was given.
#[must_use]
pub fn fault_injection() -> Option<FaultConfig> {
    FAULT_INJECTION.get().copied()
}

/// Process-wide shadow-check switch, set once from the `--shadow-check`
/// command-line flag (same write-once pattern as [`set_fault_injection`]).
/// When enabled, every simulation the service computes runs with a
/// [`MemoryOracle`] attached and reports its verification summary into
/// the experiment's captured output.
static SHADOW_CHECK: OnceLock<bool> = OnceLock::new();

/// Enables oracle shadow-checking for every subsequent benchmark run in
/// this process. Returns `false` if the switch was already set.
pub fn set_shadow_check(enabled: bool) -> bool {
    SHADOW_CHECK.set(enabled).is_ok()
}

/// Whether `--shadow-check` is active in this process.
#[must_use]
pub fn shadow_check_enabled() -> bool {
    SHADOW_CHECK.get().copied().unwrap_or(false)
}

/// Process-wide write-back switch, set once from the `--write-back`
/// command-line flag. When enabled, [`experiment_config`] (and thus
/// every experiment that does not pin its own machine) runs the L1 as
/// write-back/write-allocate with dirty compressed lines instead of the
/// default write-through data path. `write_back` *is* part of the config
/// fingerprint, so memoized and stored results never mix the two modes.
static WRITE_BACK: OnceLock<bool> = OnceLock::new();

/// Enables the write-back data path for every subsequent benchmark run
/// in this process. Returns `false` if the switch was already set.
pub fn set_write_back(enabled: bool) -> bool {
    WRITE_BACK.set(enabled).is_ok()
}

/// Whether `--write-back` is active in this process.
#[must_use]
pub fn write_back_enabled() -> bool {
    WRITE_BACK.get().copied().unwrap_or(false)
}

/// Aggregate shadow-check counters across every *genuinely executed*
/// simulation in this process (memo-cache replays do not re-count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowTally {
    /// Simulations that ran with an oracle attached.
    pub sims: u64,
    /// Loads whose bytes were compared against the reference model.
    pub loads_checked: u64,
    /// Structural checkpoints taken.
    pub checkpoints: u64,
    /// Violations detected (data integrity + structural).
    pub violations: u64,
}

static SHADOW_SIMS: AtomicU64 = AtomicU64::new(0);
static SHADOW_LOADS: AtomicU64 = AtomicU64::new(0);
static SHADOW_CHECKPOINTS: AtomicU64 = AtomicU64::new(0);
static SHADOW_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// The process-wide shadow-check counters so far.
#[must_use]
pub fn shadow_tally() -> ShadowTally {
    ShadowTally {
        sims: SHADOW_SIMS.load(Ordering::SeqCst),
        loads_checked: SHADOW_LOADS.load(Ordering::SeqCst),
        checkpoints: SHADOW_CHECKPOINTS.load(Ordering::SeqCst),
        violations: SHADOW_VIOLATIONS.load(Ordering::SeqCst),
    }
}

/// Explicit overrides for the LATTE-CC controller knobs that used to be
/// read from hidden `LATTE_*` environment variables inside
/// [`LatteConfig::paper`]. They are now plumbed from the `latte-bench`
/// command line (`--miss-latency`, `--tolerance-scale`, `--force-mode`,
/// `--debug-decide`) through this struct, so a config is fully
/// determined by its constructor arguments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatteOverrides {
    /// Overrides [`LatteConfig::miss_latency`] (cycles).
    pub miss_latency: Option<f64>,
    /// Overrides [`LatteConfig::tolerance_scale`].
    pub tolerance_scale: Option<f64>,
    /// Pins every controller decision to a fixed mode.
    pub force_mode: Option<CompressionMode>,
    /// Prints a per-decision trace from the controller.
    pub debug_decide: bool,
}

/// Process-wide LATTE-CC config overrides, set once from the command
/// line before any experiment runs (same pattern as
/// [`set_fault_injection`]: experiments build configs in many places,
/// and a write-once global avoids threading a parameter through every
/// signature while staying deterministic under the parallel driver —
/// after startup it is read-only).
static LATTE_OVERRIDES: OnceLock<LatteOverrides> = OnceLock::new();

/// Installs controller-knob overrides for every subsequent benchmark run
/// in this process. Returns `false` if overrides were already installed
/// (the first call wins).
pub fn set_latte_overrides(overrides: LatteOverrides) -> bool {
    LATTE_OVERRIDES.set(overrides).is_ok()
}

/// The process-wide controller-knob overrides (all-`None`/false when
/// nothing was installed).
#[must_use]
pub fn latte_overrides() -> LatteOverrides {
    LATTE_OVERRIDES.get().copied().unwrap_or_default()
}

/// Applies the process-wide overrides to a freshly built [`LatteConfig`].
fn apply_overrides(latte: LatteConfig) -> LatteConfig {
    apply_overrides_with(latte, latte_overrides())
}

/// Applies one specific set of overrides ([`apply_overrides`] minus the
/// global lookup, so it is unit-testable without mutating process state).
fn apply_overrides_with(mut latte: LatteConfig, ov: LatteOverrides) -> LatteConfig {
    if let Some(miss) = ov.miss_latency {
        latte = latte.with_miss_latency(miss);
    }
    if let Some(scale) = ov.tolerance_scale {
        latte = latte.with_tolerance_scale(scale);
    }
    if ov.force_mode.is_some() {
        latte.force_mode = ov.force_mode;
    }
    if ov.debug_decide {
        // Route the decision trace into the per-experiment output
        // capture (report::emit): lines land in the experiment's own
        // buffer, so parallel runs cannot interleave.
        latte.decide_trace = Some(latte_gpusim::TraceSink::new(|line| {
            crate::report::emit(format_args!("{line}\n"));
        }));
    }
    latte
}

/// The compression management policies under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Uncompressed baseline.
    Baseline,
    /// Static BDI on every fill.
    StaticBdi,
    /// Static SC on every fill.
    StaticSc,
    /// Static BPC on every fill.
    StaticBpc,
    /// LATTE-CC with BDI + SC component algorithms.
    LatteCc,
    /// LATTE-CC with BDI + BPC component algorithms (Fig 18).
    LatteCcBdiBpc,
    /// The generalised four-mode controller (None/BDI/BPC/SC) — the §V-E
    /// extension.
    LatteCcMulti,
    /// Adaptive-Hit-Count (§V-D).
    AdaptiveHitCount,
    /// Adaptive-CMP (§V-D).
    AdaptiveCmp,
    /// CABA-style software assist warps (arXiv 1602.01348): BDI in
    /// software, gated EP-by-EP on latency tolerance.
    AssistWarp,
}

/// Every policy, in report order.
pub const ALL_POLICIES: [PolicyKind; 10] = [
    PolicyKind::Baseline,
    PolicyKind::StaticBdi,
    PolicyKind::StaticSc,
    PolicyKind::StaticBpc,
    PolicyKind::LatteCc,
    PolicyKind::LatteCcBdiBpc,
    PolicyKind::LatteCcMulti,
    PolicyKind::AdaptiveHitCount,
    PolicyKind::AdaptiveCmp,
    PolicyKind::AssistWarp,
];

impl PolicyKind {
    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::StaticBdi => "Static-BDI",
            PolicyKind::StaticSc => "Static-SC",
            PolicyKind::StaticBpc => "Static-BPC",
            PolicyKind::LatteCc => "LATTE-CC",
            PolicyKind::LatteCcBdiBpc => "LATTE-CC-BDI-BPC",
            PolicyKind::LatteCcMulti => "LATTE-CC-4mode",
            PolicyKind::AdaptiveHitCount => "Adaptive-Hit-Count",
            PolicyKind::AdaptiveCmp => "Adaptive-CMP",
            PolicyKind::AssistWarp => "Assist-Warp",
        }
    }

    /// Builds a fresh policy instance, tuned to `gpu_config`'s L1.
    #[must_use]
    pub fn build(self, gpu_config: &GpuConfig) -> Box<dyn L1CompressionPolicy> {
        let latte = apply_overrides(LatteConfig {
            num_l1_sets: gpu_config.l1_geometry.num_sets(),
            l1_base_hit_latency: gpu_config.l1_hit_latency as f64,
            ..LatteConfig::paper()
        });
        match self {
            PolicyKind::Baseline => Box::new(UncompressedPolicy),
            PolicyKind::StaticBdi => Box::new(StaticBdi::new()),
            PolicyKind::StaticSc => Box::new(StaticSc::new()),
            PolicyKind::StaticBpc => Box::new(StaticBpc::new()),
            PolicyKind::LatteCc => Box::new(LatteCc::new(latte)),
            PolicyKind::LatteCcBdiBpc => Box::new(LatteCc::new(LatteConfig {
                high_capacity: HighCapacityAlgo::Bpc,
                ..latte
            })),
            PolicyKind::LatteCcMulti => Box::new(LatteCcMulti::new(MultiConfig {
                num_l1_sets: latte.num_l1_sets,
                l1_base_hit_latency: latte.l1_base_hit_latency,
                miss_latency: latte.miss_latency,
                tolerance_scale: latte.tolerance_scale,
                ..MultiConfig::four_mode()
            })),
            PolicyKind::AdaptiveHitCount => Box::new(AdaptiveHitCount::new(latte)),
            PolicyKind::AdaptiveCmp => Box::new(AdaptiveCmp::new(latte)),
            PolicyKind::AssistWarp => Box::new(AssistWarp::new()),
        }
    }
}

/// Aggregate result of one benchmark under one policy.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark abbreviation.
    pub abbr: &'static str,
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Summed statistics over all kernels.
    pub stats: KernelStats,
    /// Energy report over the whole benchmark.
    pub energy: EnergyReport,
    /// Per-SM policy decision reports after the final kernel.
    pub reports: Vec<latte_gpusim::PolicyReport>,
    /// Oracle verification report, when the run was shadow-checked.
    pub shadow: Option<OracleReport>,
}

impl BenchResult {
    /// Total cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Speedup of this result relative to `baseline` (cycles ratio).
    #[must_use]
    pub fn speedup_over(&self, baseline: &BenchResult) -> f64 {
        baseline.stats.cycles as f64 / self.stats.cycles.max(1) as f64
    }

    /// L1 miss reduction relative to `baseline` (positive = fewer misses).
    #[must_use]
    pub fn miss_reduction_over(&self, baseline: &BenchResult) -> f64 {
        let b = baseline.stats.l1.misses.max(1) as f64;
        (b - self.stats.l1.misses as f64) / b
    }

    /// Energy relative to `baseline` (1.0 = equal, <1 = saves energy).
    #[must_use]
    pub fn energy_ratio_over(&self, baseline: &BenchResult) -> f64 {
        self.energy.total_nj() / baseline.energy.total_nj().max(1e-9)
    }
}

/// The default experiment machine: a scaled-down Table II configuration
/// (fewer SMs, proportional L2) chosen for wall-clock reasons; per-SM
/// behaviour is unchanged. Experiments that need the full 15-SM machine
/// construct [`GpuConfig::paper`] themselves.
#[must_use]
pub fn experiment_config() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        faults: fault_injection(),
        write_back: write_back_enabled(),
        ..GpuConfig::small()
    }
}

/// Runs `bench` under `policy` on the default experiment machine,
/// memoized by the simulation service (see [`crate::sim`]).
#[must_use]
pub fn run_benchmark(policy: PolicyKind, bench: &BenchmarkSpec) -> BenchResult {
    run_benchmark_with_config(policy, bench, &experiment_config())
}

/// Runs `bench` under `policy` on a specific machine configuration.
///
/// Routed through the memoized simulation service: each unique
/// (policy, benchmark, config, overrides) combination is simulated at
/// most once per process, and repeat requests replay the stored result
/// *and* its diagnostics into the caller's output capture. Experiments
/// that must genuinely re-execute (e.g. a determinism self-check) call
/// [`run_benchmark_uncached`] instead.
#[must_use]
pub fn run_benchmark_with_config(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> BenchResult {
    crate::sim::run_cached(policy, bench, config)
}

/// Runs `bench` under `policy` on `config`, **bypassing** the simulation
/// memo cache: the simulator genuinely executes, and diagnostics are
/// emitted directly into the current capture. The cached path
/// ([`run_benchmark_with_config`]) is observationally identical and
/// almost always what you want; this exists for callers whose *point* is
/// re-execution, like `resilience`'s determinism self-check.
#[must_use]
pub fn run_benchmark_uncached(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> BenchResult {
    run_instrumented(policy, bench, config, shadow_check_enabled(), true)
}

/// Uncached run that does **not** count toward the process-wide shadow
/// tally. This is the store-verify recompute path: the stored result it
/// is compared against already tallied (either at its original compute
/// or via [`tally_shadow_replay`] when it was loaded), so tallying the
/// comparison run too would double-count the simulation.
#[must_use]
pub(crate) fn run_benchmark_untallied(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> BenchResult {
    run_instrumented(policy, bench, config, shadow_check_enabled(), false)
}

/// Folds a shadow report revived from the persistent result store into
/// the process-wide tally. A store hit must be observationally identical
/// to a cold compute, and the cold compute would have tallied — so the
/// warm process tallies the stored report instead.
pub(crate) fn tally_shadow_replay(report: &OracleReport) {
    SHADOW_SIMS.fetch_add(1, Ordering::SeqCst);
    SHADOW_LOADS.fetch_add(report.loads_checked, Ordering::SeqCst);
    SHADOW_CHECKPOINTS.fetch_add(report.checkpoints, Ordering::SeqCst);
    SHADOW_VIOLATIONS.fetch_add(report.violations_total, Ordering::SeqCst);
}

/// Runs `bench` under `policy` with the oracle shadow check attached,
/// regardless of the `--shadow-check` flag, bypassing the memo cache.
/// This is the entry point for the `verify` experiment and the
/// verification tests, which need the report even when the process-wide
/// switch is off.
#[must_use]
pub fn run_benchmark_shadowed(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> (BenchResult, OracleReport) {
    // Not counted in the process-wide tally: explicit shadowed runs
    // (including the `verify` experiment's deliberate corruption demos)
    // must not trip the driver's "--shadow-check found violations" exit.
    let mut result = run_instrumented(policy, bench, config, true, false);
    let report = result.shadow.take().unwrap_or_default();
    result.shadow = Some(report.clone());
    (result, report)
}

/// The one place a simulator is actually constructed and driven.
/// `shadowed` attaches a [`MemoryOracle`] before the first kernel and
/// folds its report into the result (and the output capture) afterwards.
fn run_instrumented(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
    shadowed: bool,
    count_in_tally: bool,
) -> BenchResult {
    let mut config = config.clone();
    if config.faults.is_none() {
        config.faults = fault_injection();
    }
    if config.sim_threads <= 1 {
        // Configs that don't pin a thread count inherit the process-wide
        // `--sim-threads` setting. Results are byte-identical either way
        // (which is why `sim_threads` stays outside the fingerprint).
        config.sim_threads = sim_threads();
    }
    if latte_overrides().debug_decide {
        // The controller's decision trace emits into the per-experiment
        // output capture from *inside* SM stepping; under the epoch
        // barrier those calls would run on worker threads and miss the
        // capture. The trace is a debugging aid, so trade speed for it.
        config.sim_threads = 1;
    }
    let mut gpu = Gpu::new(&config, |_| policy.build(&config));
    // Simulator diagnostics (watchdog, early termination) join the same
    // per-experiment capture as the runner's own output.
    gpu.set_diag_sink(latte_gpusim::TraceSink::new(|line| {
        crate::report::emit(format_args!("{line}\n"));
    }));
    let handle = if shadowed {
        let (oracle, handle) = MemoryOracle::new();
        gpu.set_shadow_check(Box::new(oracle), ShadowConfig::default());
        Some(handle)
    } else {
        None
    };
    let kernels = bench.build_kernels();
    let mut stats = KernelStats::default();
    for kernel in &kernels {
        let ks = gpu.run_kernel(kernel as &dyn Kernel);
        if !ks.termination.is_clean() {
            outln!(
                "latte-bench: {}/{} under {} stopped early: {} after {} cycles \
                 (statistics for this benchmark are partial)",
                bench.abbr,
                kernel.name(),
                policy.name(),
                ks.termination,
                ks.cycles
            );
        }
        stats.accumulate(&ks);
    }
    let shadow = handle.map(|h| {
        let report = h.report();
        if count_in_tally {
            SHADOW_SIMS.fetch_add(1, Ordering::SeqCst);
            SHADOW_LOADS.fetch_add(report.loads_checked, Ordering::SeqCst);
            SHADOW_CHECKPOINTS.fetch_add(report.checkpoints, Ordering::SeqCst);
            SHADOW_VIOLATIONS.fetch_add(report.violations_total, Ordering::SeqCst);
        }
        // The summary prints into the capture, so memo-cache replays of a
        // shadow-checked simulation reproduce it byte-for-byte.
        outln!(
            "[shadow] {}/{}: {} loads checked, {} checkpoints, {} violation(s)",
            bench.abbr,
            policy.name(),
            report.loads_checked,
            report.checkpoints,
            report.violations_total
        );
        for violation in report.violations.iter().take(3) {
            outln!("[shadow]   {violation}");
        }
        report
    });
    crate::timing::record_epoch_stats(&gpu.take_epoch_stats());
    let energy = EnergyModel::paper().account(&stats);
    BenchResult {
        abbr: bench.abbr,
        policy,
        stats,
        energy,
        reports: gpu.policy_reports(),
        shadow,
    }
}

/// Geometric mean of a nonempty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn all_policies_have_unique_names() {
        let mut names: Vec<&str> = ALL_POLICIES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_POLICIES.len());
    }

    #[test]
    fn overrides_replace_the_removed_env_knobs() {
        let base = LatteConfig::paper();
        let ov = LatteOverrides {
            miss_latency: Some(320.0),
            tolerance_scale: Some(0.5),
            force_mode: Some(CompressionMode::LowLatency),
            debug_decide: true,
        };
        let cfg = apply_overrides_with(base.clone(), ov);
        assert_eq!(cfg.miss_latency, 320.0);
        assert_eq!(cfg.tolerance_scale, 0.5);
        assert_eq!(cfg.force_mode, Some(CompressionMode::LowLatency));
        assert!(cfg.decide_trace.is_some(), "--debug-decide installs a trace sink");
        // No overrides => the config passes through untouched.
        let untouched = apply_overrides_with(base.clone(), LatteOverrides::default());
        assert_eq!(untouched.miss_latency, base.miss_latency);
        assert_eq!(untouched.tolerance_scale, base.tolerance_scale);
        assert_eq!(untouched.force_mode, None);
        assert!(untouched.decide_trace.is_none());
    }

    #[test]
    fn runner_executes_a_small_benchmark() {
        let bench = latte_workloads::benchmark("NW").expect("NW exists");
        let baseline = run_benchmark(PolicyKind::Baseline, &bench);
        let bdi = run_benchmark(PolicyKind::StaticBdi, &bench);
        assert!(baseline.stats.instructions > 0);
        assert_eq!(baseline.stats.instructions, bdi.stats.instructions);
        assert!(bdi.energy.total_nj() > 0.0);
    }
}
