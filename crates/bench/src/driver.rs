//! The parallel experiment driver: runs a batch of experiments on the
//! work-stealing [`crate::pool`], captures each experiment's stdout into
//! a private buffer, and reports finished experiments one block at a
//! time from the calling thread so tables never interleave.
//!
//! Determinism contract: a run with `--jobs N` produces byte-identical
//! `results/` files to `--jobs 1`. This holds because (a) every
//! experiment builds its whole simulator state privately and all
//! simulation RNG flows through per-SM splitmix64 streams seeded only by
//! `(seed, sm)`, (b) result files are written atomically (temp file +
//! rename) under experiment-unique names, and (c) nothing in an
//! experiment reads wall-clock time or another experiment's output.
//! Only the stdout *ordering* of finished blocks may differ between
//! runs. The contract is enforced by `crates/bench/tests/determinism.rs`.

use crate::pool;
use crate::report;
use crate::timing;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One registered experiment: name, description, entry point.
pub type Experiment = (&'static str, &'static str, fn() -> io::Result<()>);

/// Outcome of one experiment under the driver.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Experiment name.
    pub name: &'static str,
    /// Everything the experiment printed, as one block.
    pub output: String,
    /// The experiment's result; panics are converted into errors so one
    /// crashing experiment cannot take down the batch.
    pub result: io::Result<()>,
    /// Wall-clock seconds the experiment took.
    pub secs: f64,
}

fn run_one(name: &'static str, run: fn() -> io::Result<()>) -> ExperimentOutcome {
    let watch = timing::Stopwatch::start();
    report::begin_capture();
    let result = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(io::Error::other(format!("experiment panicked: {msg}")))
        }
    };
    ExperimentOutcome {
        name,
        output: report::end_capture(),
        result,
        secs: watch.elapsed_secs(),
    }
}

/// Runs `selected` on `jobs` worker threads, printing each finished
/// experiment's output as one atomic block (completion order). Returns
/// the number of failed experiments; every experiment runs even when an
/// earlier one fails or panics.
pub fn run_experiments(selected: &[&Experiment], jobs: usize) -> usize {
    run_experiments_with_outcomes(selected, jobs).0
}

/// [`run_experiments`], additionally returning every completed
/// [`ExperimentOutcome`] in submission order (experiments whose worker
/// died are absent). The `--timings` report and the determinism
/// integration test consume the outcomes.
pub fn run_experiments_with_outcomes(
    selected: &[&Experiment],
    jobs: usize,
) -> (usize, Vec<ExperimentOutcome>) {
    let total = selected.len();
    let tasks: Vec<Box<dyn FnOnce() -> ExperimentOutcome + Send>> = selected
        .iter()
        .map(|&&(name, _, run)| {
            Box::new(move || run_one(name, run)) as Box<dyn FnOnce() -> ExperimentOutcome + Send>
        })
        .collect();

    let mut failed = 0usize;
    let mut done = 0usize;
    let outcomes = pool::run_tasks(jobs, tasks, |_, outcome: &ExperimentOutcome| {
        done += 1;
        println!("==================== {} [{done}/{total}] ====================", outcome.name);
        print!("{}", outcome.output);
        match &outcome.result {
            Ok(()) => println!("[{} done in {:.1}s]\n", outcome.name, outcome.secs),
            Err(e) => {
                failed += 1;
                eprintln!("[{} FAILED after {:.1}s: {e}]\n", outcome.name, outcome.secs);
            }
        }
    });
    // Workers only die if a panic escapes `catch_unwind` (e.g. an abort
    // in a dependency); count the experiments that never reported.
    let died = outcomes.iter().filter(|o| o.is_none()).count();
    (failed + died, outcomes.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_exp() -> io::Result<()> {
        crate::report::outln!("ok experiment output");
        Ok(())
    }

    fn err_exp() -> io::Result<()> {
        Err(io::Error::other("intentional failure"))
    }

    fn panic_exp() -> io::Result<()> {
        panic!("intentional panic");
    }

    #[test]
    fn failures_and_panics_do_not_stop_the_batch() {
        static EXPS: [Experiment; 4] = [
            ("a", "", ok_exp),
            ("b", "", err_exp),
            ("c", "", panic_exp),
            ("d", "", ok_exp),
        ];
        let selected: Vec<&Experiment> = EXPS.iter().collect();
        let failed = run_experiments(&selected, 2);
        assert_eq!(failed, 2);
    }

    #[test]
    fn panics_are_reported_as_errors_with_payload() {
        let outcome = run_one("p", panic_exp);
        let err = outcome.result.expect_err("panic must become an error");
        assert!(err.to_string().contains("intentional panic"));
    }
}
