//! Per-policy statistics dump for one benchmark (calibration tooling).

use latte_bench::{run_benchmark, ALL_POLICIES};
use latte_workloads::benchmark;

fn main() {
    let Some(abbr) = std::env::args().nth(1) else {
        eprintln!("usage: detail <ABBR>");
        std::process::exit(2);
    };
    let Some(bench) = benchmark(&abbr) else {
        eprintln!("unknown benchmark: {abbr}");
        std::process::exit(2);
    };
    println!(
        "{:18} {:>10} {:>8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9} {:>10} {:>9} {:>8}",
        "policy", "cycles", "ipc", "l1hits", "l1miss", "hit%", "decomp", "dqwait", "hitwait", "misswait", "barwait", "dram"
    );
    for p in ALL_POLICIES {
        let r = run_benchmark(p, &bench);
        let s = &r.stats;
        println!(
            "{:18} {:>10} {:>8.3} {:>10} {:>10} {:>8.3} {:>10} {:>10} {:>9} {:>10} {:>9} {:>8}",
            p.name(),
            s.cycles,
            s.ipc(),
            s.l1.hits,
            s.l1.misses,
            s.l1.hit_rate(),
            s.decompressions.total(),
            s.decompression_queue_wait,
            s.hit_wait_cycles,
            s.miss_wait_cycles,
            s.barrier_wait_cycles,
            s.dram_accesses,
        );
    }
}
