//! Calibration probe: per-benchmark speedup/miss/energy under the main
//! policies. Not part of the published experiment set; used to tune the
//! synthetic workloads against the paper's reported shapes.

use latte_bench::{run_benchmark, PolicyKind};
use latte_workloads::suite;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let policies = [
        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,
        PolicyKind::LatteCc,
    ];
    println!(
        "{:5} {:8} | {:>9} {:>9} {:>9} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | hitr",
        "bench", "cat", "spd-BDI", "spd-SC", "spd-LAT", "mr-BDI", "mr-SC", "mr-LAT", "en-BDI",
        "en-SC", "en-LAT"
    );
    for bench in suite() {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(bench.abbr)) {
            continue;
        }
        let base = run_benchmark(PolicyKind::Baseline, &bench);
        let results: Vec<_> = policies.iter().map(|&p| run_benchmark(p, &bench)).collect();
        print!("{:5} {:8} |", bench.abbr, bench.category.to_string());
        for r in &results {
            print!(" {:>8.3}", r.speedup_over(&base));
        }
        print!(" |");
        for r in &results {
            print!(" {:>6.1}%", r.miss_reduction_over(&base) * 100.0);
        }
        print!(" |");
        for r in &results {
            print!(" {:>7.3}", r.energy_ratio_over(&base));
        }
        // LATTE-CC mode histogram (summed over SMs): None/Low/High EPs.
        let latte = &results[2];
        let mut hist = [0u64; 3];
        for r in &latte.reports {
            for (h, m) in hist.iter_mut().zip(r.eps_in_mode) {
                *h += m;
            }
        }
        println!(
            " | {:.2} | modes N/L/H {:>4}/{:>4}/{:>4}",
            base.stats.l1.hit_rate(),
            hist[0],
            hist[1],
            hist[2]
        );
    }
}
