//! Serialized experiment output.
//!
//! Experiments historically printed straight to stdout with `println!`.
//! Under the parallel driver that would interleave half-printed tables
//! from different experiments, so all experiment output now goes through
//! the crate-internal `out!`/`outln!` macros: on a driver worker thread
//! the text is captured into a thread-local buffer and the driver prints
//! the whole block atomically when the experiment finishes; outside the
//! driver (unit tests, examples, direct library use) the macros degrade
//! to plain `print!`.

use std::cell::RefCell;
use std::fmt;

thread_local! {
    static CAPTURE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Starts capturing this thread's experiment output. Nested captures are
/// not supported: a second call simply clears the buffer.
pub fn begin_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(String::new()));
}

/// Stops capturing and returns everything emitted since
/// [`begin_capture`]. Returns an empty string if capture was never
/// started on this thread.
pub fn end_capture() -> String {
    CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
}

/// Swaps this thread's capture state for `new`, returning the previous
/// state (`None` = no capture was active).
///
/// This is the primitive behind *nested* captures: the simulation
/// service and the subtask pool wrap a unit of work with
/// `swap_capture(Some(String::new()))` / `swap_capture(saved)` so the
/// work's output is harvested into its own buffer — for memoized replay
/// or ordered re-emission — without disturbing whatever capture the
/// current thread (an experiment, another subtask, or none at all) had
/// active around it.
pub fn swap_capture(new: Option<String>) -> Option<String> {
    CAPTURE.with(|c| std::mem::replace(&mut *c.borrow_mut(), new))
}

/// Emits formatted text to the active capture buffer, or to stdout when
/// no capture is active. The implementation behind [`out!`]/[`outln!`];
/// call those instead.
pub fn emit(args: fmt::Arguments<'_>) {
    CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                use fmt::Write;
                // Formatting into a String cannot fail.
                let _ = buf.write_fmt(args);
            }
            None => print!("{args}"),
        }
    });
}

/// Like `print!`, but routed through the experiment output capture.
macro_rules! out {
    ($($arg:tt)*) => {
        $crate::report::emit(::std::format_args!($($arg)*))
    };
}

/// Like `println!`, but routed through the experiment output capture.
macro_rules! outln {
    () => {
        $crate::report::emit(::std::format_args!("\n"))
    };
    ($($arg:tt)*) => {{
        $crate::report::emit(::std::format_args!($($arg)*));
        $crate::report::emit(::std::format_args!("\n"));
    }};
}

pub(crate) use {out, outln};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_and_drains() {
        begin_capture();
        out!("a{}", 1);
        outln!("b");
        outln!();
        assert_eq!(end_capture(), "a1b\n\n");
        // Drained: a second end_capture is empty.
        assert_eq!(end_capture(), "");
    }

    #[test]
    fn swap_capture_nests_and_restores() {
        begin_capture();
        out!("outer-1 ");
        let saved = swap_capture(Some(String::new()));
        out!("inner");
        let inner = swap_capture(saved).unwrap_or_default();
        out!("outer-2");
        assert_eq!(inner, "inner");
        assert_eq!(end_capture(), "outer-1 outer-2");
        // With no capture active, swap returns None.
        assert_eq!(swap_capture(None), None);
    }

    #[test]
    fn captures_are_thread_local() {
        begin_capture();
        out!("main");
        let other = std::thread::spawn(|| {
            begin_capture();
            out!("worker");
            end_capture()
        })
        .join()
        .expect("worker thread");
        assert_eq!(other, "worker");
        assert_eq!(end_capture(), "main");
    }
}
