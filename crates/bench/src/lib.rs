//! Shared experiment infrastructure for the LATTE-CC reproduction: policy
//! construction, benchmark runners, and report formatting. The
//! `latte-bench` binary dispatches one subcommand per paper table/figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed `io::Result`s the
// experiment driver can report — never panics (tests may unwrap
// freely). Enforced here rather than via clippy's command line because
// `-D clippy::unwrap_used` on the command line also gates this crate's
// whole path-dependency closure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod driver;
pub mod experiments;
pub mod pool;
mod report;
pub mod runner;
pub mod sim;
pub mod timing;

pub use driver::{
    run_experiments, run_experiments_with_outcomes, Experiment, ExperimentOutcome,
};
pub use runner::{
    fault_injection, geomean, latte_overrides, run_benchmark, run_benchmark_shadowed,
    run_benchmark_uncached, run_benchmark_with_config, set_fault_injection, set_latte_overrides,
    set_shadow_check, set_sim_threads, set_write_back, shadow_check_enabled, shadow_tally,
    sim_threads, write_back_enabled, BenchResult, LatteOverrides, PolicyKind, ShadowTally,
    ALL_POLICIES,
};
