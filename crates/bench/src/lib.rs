//! Shared experiment infrastructure for the LATTE-CC reproduction: policy
//! construction, benchmark runners, and report formatting. The
//! `latte-bench` binary dispatches one subcommand per paper table/figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

pub use runner::{
    fault_injection, geomean, run_benchmark, run_benchmark_with_config, set_fault_injection,
    BenchResult, PolicyKind, ALL_POLICIES,
};
