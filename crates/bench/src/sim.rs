//! The memoized simulation service.
//!
//! Every benchmark simulation in the bench harness flows through
//! [`run_cached`]: the job is keyed by *what would be simulated* — the
//! policy, a structural fingerprint of the [`BenchmarkSpec`], a
//! structural fingerprint of the [`GpuConfig`] (including fault
//! injection) and the process-wide controller overrides — and a
//! process-wide cache guarantees each unique key is **computed exactly
//! once per invocation**, no matter how many experiments request it.
//! The default sweep requests the Baseline/`experiment_config` run of
//! every suite benchmark from a dozen different figures; under the
//! service those all share one simulation.
//!
//! Because simulations are deterministic (enforced by
//! `crates/bench/tests/determinism.rs` and lint rule D1), replaying a
//! memoized result is observationally identical to re-running it — with
//! one subtlety: simulations also *print* (watchdog diagnostics,
//! early-stop warnings, `--debug-decide` traces). The service captures
//! everything a compute prints into [`SimOutcome::diag`] and re-emits it
//! into the requesting experiment's output buffer on **every**
//! consumption, so each experiment's captured output is the same whether
//! it hit or missed the cache.
//!
//! Concurrency: the cache maps each key to a cell; the first requester
//! claims the cell and computes inline, later requesters block on the
//! cell's condvar. A compute never requests another simulation
//! (single-level, enforced by structure: computes call
//! [`runner::run_benchmark_uncached`] which goes straight to the
//! simulator), so cell waits cannot cycle. A panicking compute parks the
//! panic message in the cell, and every requester re-raises it — one
//! poisoned simulation fails exactly the experiments that depend on it.

use crate::pool;
use crate::report;
use crate::runner::{self, BenchResult, PolicyKind};
use crate::timing;
use latte_gpusim::{Fingerprinter, GpuConfig};
use latte_workloads::BenchmarkSpec;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Canonical identity of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SimKey {
    policy: PolicyKind,
    /// Structural fingerprint of (benchmark spec, gpu config, controller
    /// overrides).
    fingerprint: u128,
}

/// A finished simulation: its result plus everything it printed.
#[derive(Debug)]
struct SimOutcome {
    result: BenchResult,
    diag: String,
}

/// One cache slot. `None` while the claiming thread is still computing;
/// `Some(Err(msg))` when the compute panicked.
struct SimCell {
    state: Mutex<Option<Result<Arc<SimOutcome>, String>>>,
    ready: Condvar,
}

static CACHE: OnceLock<Mutex<HashMap<SimKey, Arc<SimCell>>>> = OnceLock::new();

/// Simulations requested through the service.
static REQUESTS: AtomicU64 = AtomicU64::new(0);
/// Requests satisfied by an existing cell (fresh or awaited).
static HITS: AtomicU64 = AtomicU64::new(0);
/// Requests that claimed a cell and ran the simulator.
static COMPUTED: AtomicU64 = AtomicU64::new(0);

fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn cache() -> &'static Mutex<HashMap<SimKey, Arc<SimCell>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key_for(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> SimKey {
    let mut fp = Fingerprinter::new();
    bench.write_fingerprint(&mut fp);
    fp.write_u64(0x5e70_ffff); // domain separator: spec | config
    let cfg_fp = config.fingerprint();
    fp.write_u64(cfg_fp as u64);
    fp.write_u64((cfg_fp >> 64) as u64);
    // The controller overrides are process-global and write-once, but
    // folding them in keeps the key honest about everything that shapes
    // the simulation.
    let ov = runner::latte_overrides();
    fp.write_opt_f64(ov.miss_latency);
    fp.write_opt_f64(ov.tolerance_scale);
    fp.write_u64(match ov.force_mode {
        None => 0,
        Some(latte_core::CompressionMode::None) => 1,
        Some(latte_core::CompressionMode::LowLatency) => 2,
        Some(latte_core::CompressionMode::HighCapacity) => 3,
    });
    fp.write_bool(ov.debug_decide);
    // A shadow-checked simulation prints a verification summary and
    // carries an oracle report, so it must not alias an unchecked run.
    fp.write_bool(runner::shadow_check_enabled());
    SimKey {
        policy,
        fingerprint: fp.finish(),
    }
}

/// Computes one simulation with its printed output harvested into the
/// returned [`SimOutcome`] instead of the current capture.
fn compute(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> Result<Arc<SimOutcome>, String> {
    let watch = timing::Stopwatch::start();
    let saved = report::swap_capture(Some(String::new()));
    let result = catch_unwind(AssertUnwindSafe(|| {
        runner::run_benchmark_uncached(policy, bench, config)
    }));
    let diag = report::swap_capture(saved).unwrap_or_default();
    COMPUTED.fetch_add(1, Ordering::SeqCst);
    let shadow_suffix = if runner::shadow_check_enabled() {
        " [shadow]"
    } else {
        ""
    };
    timing::record_sim(
        format!("{}/{}{shadow_suffix}", policy.name(), bench.abbr),
        watch.elapsed_secs(),
    );
    match result {
        Ok(result) => Ok(Arc::new(SimOutcome { result, diag })),
        Err(payload) => {
            // The experiment that triggered the compute still gets the
            // partial diagnostics; the panic itself is parked in the
            // cell and re-raised by every requester.
            report::emit(format_args!("{diag}"));
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(format!(
                "simulation {}/{} panicked: {msg}",
                policy.name(),
                bench.abbr
            ))
        }
    }
}

/// Returns the memoized outcome for a key, computing it if this is the
/// first request.
fn outcome_for(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> Arc<SimOutcome> {
    REQUESTS.fetch_add(1, Ordering::SeqCst);
    let key = key_for(policy, bench, config);
    let (cell, claimed) = {
        let mut map = lock(cache());
        match map.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(SimCell {
                    state: Mutex::new(None),
                    ready: Condvar::new(),
                });
                map.insert(key, Arc::clone(&cell));
                (cell, true)
            }
        }
    };
    if claimed {
        let outcome = compute(policy, bench, config);
        let mut state = lock(&cell.state);
        *state = Some(outcome.clone());
        cell.ready.notify_all();
        drop(state);
        match outcome {
            Ok(outcome) => outcome,
            Err(msg) => resume_unwind(Box::new(msg)),
        }
    } else {
        HITS.fetch_add(1, Ordering::SeqCst);
        let mut state = lock(&cell.state);
        loop {
            match &*state {
                Some(Ok(outcome)) => return Arc::clone(outcome),
                Some(Err(msg)) => resume_unwind(Box::new(msg.clone())),
                None => {
                    let (next, _) = cell
                        .ready
                        .wait_timeout(state, std::time::Duration::from_millis(10))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = next;
                }
            }
        }
    }
}

/// Runs (or replays) `bench` under `policy` on `config`, re-emitting the
/// simulation's diagnostics into the current output capture. This is the
/// single entry point behind [`runner::run_benchmark_with_config`].
pub fn run_cached(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> BenchResult {
    let outcome = outcome_for(policy, bench, config);
    report::emit(format_args!("{}", outcome.diag));
    outcome.result.clone()
}

/// One simulation request for the batch APIs.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Policy to evaluate.
    pub policy: PolicyKind,
    /// Benchmark to run.
    pub bench: BenchmarkSpec,
    /// Machine configuration.
    pub config: GpuConfig,
}

/// Runs a batch of simulations as pool subtasks, saturating every
/// driver worker, and returns results in submission order. Diagnostics
/// land in the calling experiment's capture in submission order, so a
/// batched experiment prints the same bytes at any `--jobs` level.
///
/// Duplicate keys within one batch are fine: the cache computes the
/// first and the rest await the same cell.
pub fn run_batch(jobs: Vec<SimJob>) -> Vec<BenchResult> {
    let tasks: Vec<Box<dyn FnOnce() -> BenchResult + Send>> = jobs
        .into_iter()
        .map(|job| {
            Box::new(move || run_cached(job.policy, &job.bench, &job.config))
                as Box<dyn FnOnce() -> BenchResult + Send>
        })
        .collect();
    pool::run_subtasks(tasks)
}

/// [`run_batch`] over the cross product `policies` × `benches` on one
/// config; returns results grouped per benchmark, policies in the given
/// order (`result[b][p]` = `benches[b]` under `policies[p]`).
pub fn run_matrix(
    policies: &[PolicyKind],
    benches: &[BenchmarkSpec],
    config: &GpuConfig,
) -> Vec<Vec<BenchResult>> {
    let jobs: Vec<SimJob> = benches
        .iter()
        .flat_map(|bench| {
            policies.iter().map(|&policy| SimJob {
                policy,
                bench: bench.clone(),
                config: config.clone(),
            })
        })
        .collect();
    let mut flat = run_batch(jobs).into_iter();
    benches
        .iter()
        .map(|_| (0..policies.len()).filter_map(|_| flat.next()).collect())
        .collect()
}

/// [`run_matrix`] on the default experiment machine
/// ([`runner::experiment_config`]).
pub fn run_matrix_default(
    policies: &[PolicyKind],
    benches: &[BenchmarkSpec],
) -> Vec<Vec<BenchResult>> {
    run_matrix(policies, benches, &runner::experiment_config())
}

/// `(requests, hits, computed)` counters since process start.
pub fn stats() -> (u64, u64, u64) {
    (
        REQUESTS.load(Ordering::SeqCst),
        HITS.load(Ordering::SeqCst),
        COMPUTED.load(Ordering::SeqCst),
    )
}

/// Checks the service's "each unique simulation ran exactly once"
/// contract: the number of computes equals the number of distinct keys,
/// and every request was either a hit or a compute.
///
/// # Errors
///
/// Returns a description of the violated invariant.
pub fn verify_each_sim_ran_once() -> Result<(), String> {
    let (requests, hits, computed) = stats();
    let unique = lock(cache()).len() as u64;
    if computed != unique {
        return Err(format!(
            "sim cache invariant violated: {computed} computes for {unique} unique keys"
        ));
    }
    if requests != hits + computed {
        return Err(format!(
            "sim cache invariant violated: {requests} requests != {hits} hits + {computed} computes"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nw() -> BenchmarkSpec {
        latte_workloads::benchmark("NW").expect("NW exists")
    }

    #[test]
    fn cache_replays_results_and_diagnostics_identically() {
        let bench = nw();
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let (_, _, computed_before) = stats();

        report::begin_capture();
        let cold = run_cached(PolicyKind::StaticBdi, &bench, &config);
        let cold_text = report::end_capture();
        let (_, _, computed_mid) = stats();

        report::begin_capture();
        let warm = run_cached(PolicyKind::StaticBdi, &bench, &config);
        let warm_text = report::end_capture();
        let (_, _, computed_after) = stats();

        assert_eq!(cold.stats.cycles, warm.stats.cycles);
        assert_eq!(cold.energy.total_nj(), warm.energy.total_nj());
        assert_eq!(cold_text, warm_text, "replayed diagnostics must match");
        // Other tests run concurrently against the same process-wide
        // cache, so assert deltas local to this key: the warm request
        // computed nothing new.
        assert!(computed_mid > computed_before);
        assert_eq!(computed_mid, computed_after);
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let bench = nw();
        let a = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let b = GpuConfig {
            num_sms: 1,
            l1_hit_latency: a.l1_hit_latency + 1,
            ..GpuConfig::small()
        };
        let ra = run_cached(PolicyKind::Baseline, &bench, &a);
        let rb = run_cached(PolicyKind::Baseline, &bench, &b);
        assert_ne!(ra.stats.cycles, rb.stats.cycles);
    }

    #[test]
    fn batch_matches_serial_results() {
        let bench = nw();
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let policies = [PolicyKind::Baseline, PolicyKind::StaticSc];
        let matrix = run_matrix(&policies, std::slice::from_ref(&bench), &config);
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].len(), 2);
        for (i, &policy) in policies.iter().enumerate() {
            let serial = run_cached(policy, &bench, &config);
            assert_eq!(matrix[0][i].policy, policy);
            assert_eq!(matrix[0][i].stats.cycles, serial.stats.cycles);
        }
        assert!(verify_each_sim_ran_once().is_ok());
    }
}
