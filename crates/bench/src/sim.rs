//! The memoized simulation service, optionally backed by the crash-safe
//! persistent result store (`latte-store`).
//!
//! Every benchmark simulation in the bench harness flows through
//! [`run_cached`]: the job is keyed by *what would be simulated* — the
//! policy, a structural fingerprint of the [`BenchmarkSpec`], a
//! structural fingerprint of the [`GpuConfig`] (including fault
//! injection) and the process-wide controller overrides — and a
//! process-wide cache guarantees each unique key is **computed exactly
//! once per invocation**, no matter how many experiments request it.
//! The default sweep requests the Baseline/`experiment_config` run of
//! every suite benchmark from a dozen different figures; under the
//! service those all share one simulation.
//!
//! Because simulations are deterministic (enforced by
//! `crates/bench/tests/determinism.rs` and lint rule D1), replaying a
//! memoized result is observationally identical to re-running it — with
//! one subtlety: simulations also *print* (watchdog diagnostics,
//! early-stop warnings, `--debug-decide` traces). The service captures
//! everything a compute prints into [`SimOutcome::diag`] and re-emits it
//! into the requesting experiment's output buffer on **every**
//! consumption, so each experiment's captured output is the same whether
//! it hit or missed the cache.
//!
//! # Persistence (`--store`)
//!
//! When [`configure_store`] is called (the `--store <dir>` flag), each
//! first-in-process request additionally consults the persistent store
//! under a salted content key before simulating, and each fresh compute
//! is written through. A store hit is decoded by [`crate::codec`] —
//! whose decode *is* validation on top of the store's own checksum — and
//! then treated exactly like a computed result: same diagnostics
//! re-emission, same shadow-tally accounting, same result bytes. Any
//! store-side problem (corrupt record, stale schema, unwritable
//! directory) degrades to a recompute; the store can cost time, never
//! correctness. `--store-verify` re-simulates every store hit and
//! byte-compares the re-encoded outcome against the stored bytes,
//! counting (and healing) any divergence.
//!
//! Memory is bounded: once a result is durably on disk, its in-process
//! copy may be *spilled* when retained outcome bytes exceed the
//! retention budget; a later request revives it from the store (memory
//! tier first, then disk). Without a disk-backed store nothing is ever
//! spilled — the process-local cache then grows with the workload set,
//! exactly as it did before the store existed, because dropping the
//! only copy would turn a replay into a recompute and break the
//! "computed exactly once" contract.
//!
//! Concurrency: the cache maps each key to a cell; the first requester
//! claims the cell and computes inline, later requesters block on the
//! cell's condvar. A compute never requests another simulation
//! (single-level, enforced by structure: computes call
//! [`runner::run_benchmark_uncached`] which goes straight to the
//! simulator), so cell waits cannot cycle. A panicking compute parks the
//! panic message in the cell, and every requester re-raises it — one
//! poisoned simulation fails exactly the experiments that depend on it.

use crate::codec;
use crate::pool;
use crate::report;
use crate::runner::{self, BenchResult, PolicyKind};
use crate::timing;
use latte_gpusim::{Fingerprinter, GpuConfig};
use latte_store::{OpenReport, Store, StoreConfig, StoreStats, Tier};
use latte_workloads::BenchmarkSpec;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Canonical identity of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SimKey {
    policy: PolicyKind,
    /// Structural fingerprint of (benchmark spec, gpu config, controller
    /// overrides).
    fingerprint: u128,
}

/// A finished simulation: its result plus everything it printed.
#[derive(Debug)]
struct SimOutcome {
    result: BenchResult,
    diag: String,
}

/// Lifecycle of one cache slot.
enum CellState {
    /// A thread is computing (or reviving) this simulation.
    InFlight,
    /// The outcome is resident in memory.
    Ready(Arc<SimOutcome>),
    /// The outcome was demoted to the persistent store to bound memory;
    /// the next requester revives it (or recomputes if the store lost
    /// it).
    Spilled,
    /// The compute panicked; every requester re-raises the message.
    Failed(String),
}

/// One cache slot.
struct SimCell {
    state: Mutex<CellState>,
    ready: Condvar,
    /// Salted content key this cell persists under.
    disk_key: u128,
    /// Encoded size of the resident outcome (0 when not persisted),
    /// used for retention accounting when the cell spills.
    payload_len: AtomicUsize,
}

static CACHE: OnceLock<Mutex<HashMap<SimKey, Arc<SimCell>>>> = OnceLock::new();

/// The persistent result store, configured at most once per process
/// from `--store`. `None` (never configured) means the service behaves
/// exactly as the original process-local memo cache.
static STORE: OnceLock<Arc<Store>> = OnceLock::new();
/// Whether `--store-verify` re-simulates and byte-compares store hits.
static STORE_VERIFY: OnceLock<bool> = OnceLock::new();

/// Simulations requested through the service.
static REQUESTS: AtomicU64 = AtomicU64::new(0);
/// Requests served by a cell already resolved in this process.
static REPLAY_HITS: AtomicU64 = AtomicU64::new(0);
/// Requests (first-for-cell or revivals) served from the store's
/// in-memory tier.
static STORE_MEM_HITS: AtomicU64 = AtomicU64::new(0);
/// Requests (first-for-cell or revivals) served from the store's disk
/// tier.
static STORE_DISK_HITS: AtomicU64 = AtomicU64::new(0);
/// Requests that claimed a fresh cell and ran the simulator.
static COMPUTED: AtomicU64 = AtomicU64::new(0);
/// Requests that had to re-run the simulator because a spilled outcome
/// could no longer be revived from the store.
static RECOMPUTED: AtomicU64 = AtomicU64::new(0);
/// Cells first resolved from the persistent store rather than computed.
static STORE_FILLS: AtomicU64 = AtomicU64::new(0);
/// Resident outcomes demoted to the store under memory pressure.
static SPILLS: AtomicU64 = AtomicU64::new(0);
/// `--store-verify` recomputes that did not byte-match the stored record.
static VERIFY_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Encoded outcome bytes currently resident in `Ready` cells that are
/// also durable on disk (i.e. spillable).
static RETAINED: AtomicUsize = AtomicUsize::new(0);
/// Spill threshold for [`RETAINED`].
static RETAINED_BUDGET: AtomicUsize = AtomicUsize::new(DEFAULT_RETAINED_BUDGET);

/// Default in-process retention budget for durably-backed outcomes.
pub const DEFAULT_RETAINED_BUDGET: usize = 32 * 1024 * 1024;

fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn cache() -> &'static Mutex<HashMap<SimKey, Arc<SimCell>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Opens the persistent result store and installs it for every
/// subsequent simulation in this process. Never fails: an unusable
/// directory degrades to in-memory-only operation, reported in the
/// returned [`OpenReport`]'s warnings.
///
/// # Errors
///
/// Returns `Err` if a store was already configured (write-once, same
/// discipline as the other process-global switches); the redundant
/// store is shut down before returning.
pub fn configure_store(config: StoreConfig) -> Result<OpenReport, &'static str> {
    let (store, open_report) = Store::open(config);
    let store = Arc::new(store);
    match STORE.set(Arc::clone(&store)) {
        Ok(()) => Ok(open_report),
        Err(_) => {
            store.shutdown();
            Err("result store already configured")
        }
    }
}

/// Enables `--store-verify`. Returns `false` if already set.
pub fn set_store_verify(enabled: bool) -> bool {
    STORE_VERIFY.set(enabled).is_ok()
}

fn store_verify_enabled() -> bool {
    STORE_VERIFY.get().copied().unwrap_or(false)
}

fn store() -> Option<&'static Arc<Store>> {
    STORE.get()
}

/// The persistent store's counters, when one is configured.
#[must_use]
pub fn store_stats() -> Option<StoreStats> {
    STORE.get().map(|s| s.stats())
}

/// Whether a disk-backed store is active (spilling possible).
#[must_use]
pub fn store_is_durable() -> bool {
    STORE.get().is_some_and(|s| s.has_disk())
}

/// Blocks until every pending store write is durable.
pub fn flush_store() {
    if let Some(store) = STORE.get() {
        store.flush();
    }
}

/// Flushes and stops the store's writer. Called by the driver before
/// printing timings so `durable_writes` is final.
pub fn shutdown_store() {
    if let Some(store) = STORE.get() {
        store.shutdown();
    }
}

/// Overrides the retention budget (bytes of durably-backed outcome data
/// kept resident before spilling). Exposed for tests.
#[doc(hidden)]
pub fn set_retained_budget(bytes: usize) {
    RETAINED_BUDGET.store(bytes, Ordering::SeqCst);
}

fn key_for(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> SimKey {
    let mut fp = Fingerprinter::new();
    bench.write_fingerprint(&mut fp);
    fp.write_u64(0x5e70_ffff); // domain separator: spec | config
    let cfg_fp = config.fingerprint();
    fp.write_u64(cfg_fp as u64);
    fp.write_u64((cfg_fp >> 64) as u64);
    // The controller overrides are process-global and write-once, but
    // folding them in keeps the key honest about everything that shapes
    // the simulation.
    let ov = runner::latte_overrides();
    fp.write_opt_f64(ov.miss_latency);
    fp.write_opt_f64(ov.tolerance_scale);
    fp.write_u64(match ov.force_mode {
        None => 0,
        Some(latte_core::CompressionMode::None) => 1,
        Some(latte_core::CompressionMode::LowLatency) => 2,
        Some(latte_core::CompressionMode::HighCapacity) => 3,
    });
    fp.write_bool(ov.debug_decide);
    // A shadow-checked simulation prints a verification summary and
    // carries an oracle report, so it must not alias an unchecked run.
    fp.write_bool(runner::shadow_check_enabled());
    SimKey {
        policy,
        fingerprint: fp.finish(),
    }
}

/// Derives the persistent-store content key for a simulation. Salted by
/// a store-payload domain string (folded together with the fingerprint
/// schema version) so that any change to the outcome encoding or the
/// fingerprint algorithm retires every old record as a clean miss.
fn disk_key_for(key: &SimKey) -> u128 {
    let mut fp = Fingerprinter::salted("latte-sim-outcome/v1");
    fp.write_u64(u64::from(codec::policy_tag(key.policy)));
    fp.write_u64(key.fingerprint as u64);
    fp.write_u64((key.fingerprint >> 64) as u64);
    fp.finish()
}

/// Computes one simulation with its printed output harvested into the
/// returned [`SimOutcome`] instead of the current capture. `counter`
/// distinguishes first computes from spill-revival recomputes.
fn compute(
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
    counter: &AtomicU64,
) -> Result<Arc<SimOutcome>, String> {
    let watch = timing::Stopwatch::start();
    let saved = report::swap_capture(Some(String::new()));
    let result = catch_unwind(AssertUnwindSafe(|| {
        runner::run_benchmark_uncached(policy, bench, config)
    }));
    let diag = report::swap_capture(saved).unwrap_or_default();
    counter.fetch_add(1, Ordering::SeqCst);
    let shadow_suffix = if runner::shadow_check_enabled() {
        " [shadow]"
    } else {
        ""
    };
    timing::record_sim(
        format!("{}/{}{shadow_suffix}", policy.name(), bench.abbr),
        watch.elapsed_secs(),
    );
    match result {
        Ok(result) => Ok(Arc::new(SimOutcome { result, diag })),
        Err(payload) => {
            // The experiment that triggered the compute still gets the
            // partial diagnostics; the panic itself is parked in the
            // cell and re-raised by every requester.
            report::emit(format_args!("{diag}"));
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(format!(
                "simulation {}/{} panicked: {msg}",
                policy.name(),
                bench.abbr
            ))
        }
    }
}

/// Installs `outcome` as the cell's resident value and accounts
/// `payload_len` bytes (0 when the outcome is not persisted) toward the
/// retention budget.
fn install_ready(cell: &SimCell, outcome: &Arc<SimOutcome>, payload_len: usize) {
    cell.payload_len.store(payload_len, Ordering::SeqCst);
    if payload_len > 0 {
        RETAINED.fetch_add(payload_len, Ordering::SeqCst);
    }
    let mut state = lock(&cell.state);
    *state = CellState::Ready(Arc::clone(outcome));
    cell.ready.notify_all();
}

fn install_failed(cell: &SimCell, msg: String) {
    let mut state = lock(&cell.state);
    *state = CellState::Failed(msg);
    cell.ready.notify_all();
}

/// Encodes and writes `outcome` through to the store (if configured).
/// Returns the encoded length, or 0 when nothing was persisted.
fn persist(cell: &SimCell, outcome: &SimOutcome) -> usize {
    let Some(store) = store() else {
        return 0;
    };
    let bytes = codec::encode_outcome(&outcome.result, &outcome.diag);
    let len = bytes.len();
    store.put(cell.disk_key, Arc::new(bytes));
    len
}

fn count_store_hit(tier: Tier) {
    match tier {
        Tier::Memory => STORE_MEM_HITS.fetch_add(1, Ordering::SeqCst),
        Tier::Disk => STORE_DISK_HITS.fetch_add(1, Ordering::SeqCst),
    };
}

/// Tries to resolve a cell from the persistent store. Returns the
/// decoded outcome together with the stored byte length, or `None` on
/// miss / undecodable payload (the store already quarantined anything
/// that failed its checksum; a codec-level reject here means a record
/// from an incompatible build — treated identically as a miss).
fn load_from_store(
    cell: &SimCell,
    policy: PolicyKind,
    bench: &BenchmarkSpec,
) -> Option<(Arc<SimOutcome>, Arc<Vec<u8>>, Tier)> {
    let store = store()?;
    let (bytes, tier) = store.get(cell.disk_key)?;
    match codec::decode_outcome(&bytes, policy, bench) {
        Ok((result, diag)) => Some((Arc::new(SimOutcome { result, diag }), bytes, tier)),
        Err(_) => None,
    }
}

/// `--store-verify`: re-simulates a store hit and byte-compares the
/// re-encoded outcome against the stored record. On mismatch, prefers
/// the freshly computed result and heals the store with it.
fn verify_store_hit(
    cell: &SimCell,
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
    stored_bytes: &[u8],
) -> Option<Arc<SimOutcome>> {
    let watch = timing::Stopwatch::start();
    let saved = report::swap_capture(Some(String::new()));
    let recomputed = catch_unwind(AssertUnwindSafe(|| {
        runner::run_benchmark_untallied(policy, bench, config)
    }));
    let diag = report::swap_capture(saved).unwrap_or_default();
    timing::record_sim(
        format!("{}/{} [store-verify]", policy.name(), bench.abbr),
        watch.elapsed_secs(),
    );
    let Ok(result) = recomputed else {
        // The reference recompute itself died: the stored record cannot
        // be confirmed, which is exactly what --store-verify exists to
        // surface.
        VERIFY_FAILURES.fetch_add(1, Ordering::SeqCst);
        report::emit(format_args!(
            "[store-verify] {}/{}: recompute panicked; stored record unconfirmed\n",
            policy.name(),
            bench.abbr
        ));
        return None;
    };
    let fresh = codec::encode_outcome(&result, &diag);
    if fresh == stored_bytes {
        return None;
    }
    VERIFY_FAILURES.fetch_add(1, Ordering::SeqCst);
    report::emit(format_args!(
        "[store-verify] {}/{}: stored record diverges from recompute \
         ({} vs {} bytes); using the recompute and overwriting the record\n",
        policy.name(),
        bench.abbr,
        stored_bytes.len(),
        fresh.len()
    ));
    if let Some(store) = store() {
        store.put(cell.disk_key, Arc::new(fresh));
    }
    Some(Arc::new(SimOutcome { result, diag }))
}

/// Resolves a freshly claimed cell: persistent store first, then a real
/// compute (written through to the store).
fn resolve_claimed(
    cell: &SimCell,
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> Arc<SimOutcome> {
    if let Some((outcome, bytes, tier)) = load_from_store(cell, policy, bench) {
        count_store_hit(tier);
        STORE_FILLS.fetch_add(1, Ordering::SeqCst);
        // A cold compute would have folded its oracle report into the
        // process tally; a warm fill must look identical.
        if let Some(shadow) = &outcome.result.shadow {
            runner::tally_shadow_replay(shadow);
        }
        let outcome = if store_verify_enabled() {
            verify_store_hit(cell, policy, bench, config, &bytes).unwrap_or(outcome)
        } else {
            outcome
        };
        install_ready(cell, &outcome, bytes.len());
        return outcome;
    }
    match compute(policy, bench, config, &COMPUTED) {
        Ok(outcome) => {
            let len = persist(cell, &outcome);
            install_ready(cell, &outcome, len);
            outcome
        }
        Err(msg) => {
            install_failed(cell, msg.clone());
            resume_unwind(Box::new(msg))
        }
    }
}

/// Revives a spilled cell from the store, or recomputes if the store
/// lost the record (corruption cost a recompute — never a wrong
/// answer). The caller has already transitioned the cell to
/// `InFlight`.
fn revive(
    cell: &SimCell,
    policy: PolicyKind,
    bench: &BenchmarkSpec,
    config: &GpuConfig,
) -> Arc<SimOutcome> {
    if let Some((outcome, bytes, tier)) = load_from_store(cell, policy, bench) {
        count_store_hit(tier);
        install_ready(cell, &outcome, bytes.len());
        return outcome;
    }
    match compute(policy, bench, config, &RECOMPUTED) {
        Ok(outcome) => {
            let len = persist(cell, &outcome);
            install_ready(cell, &outcome, len);
            outcome
        }
        Err(msg) => {
            install_failed(cell, msg.clone());
            resume_unwind(Box::new(msg))
        }
    }
}

/// Returns the memoized outcome for a key, computing it if this is the
/// first request.
fn outcome_for(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> Arc<SimOutcome> {
    REQUESTS.fetch_add(1, Ordering::SeqCst);
    let key = key_for(policy, bench, config);
    let (cell, claimed) = {
        let mut map = lock(cache());
        match map.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(SimCell {
                    state: Mutex::new(CellState::InFlight),
                    ready: Condvar::new(),
                    disk_key: disk_key_for(&key),
                    payload_len: AtomicUsize::new(0),
                });
                map.insert(key, Arc::clone(&cell));
                (cell, true)
            }
        }
    };
    if claimed {
        return resolve_claimed(&cell, policy, bench, config);
    }
    let mut state = lock(&cell.state);
    loop {
        match &*state {
            CellState::Ready(outcome) => {
                REPLAY_HITS.fetch_add(1, Ordering::SeqCst);
                return Arc::clone(outcome);
            }
            CellState::Failed(msg) => {
                REPLAY_HITS.fetch_add(1, Ordering::SeqCst);
                let msg = msg.clone();
                drop(state);
                resume_unwind(Box::new(msg));
            }
            CellState::Spilled => {
                *state = CellState::InFlight;
                drop(state);
                return revive(&cell, policy, bench, config);
            }
            CellState::InFlight => {
                let (next, _) = cell
                    .ready
                    .wait_timeout(state, std::time::Duration::from_millis(10))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = next;
            }
        }
    }
}

/// Demotes durably-backed resident outcomes to the store until retained
/// bytes fit the budget again. Only cells whose record is confirmed on
/// disk are eligible — spilling the only copy would turn a replay into
/// a recompute and break the "computed exactly once" contract.
fn enforce_retention() {
    let budget = RETAINED_BUDGET.load(Ordering::SeqCst);
    if RETAINED.load(Ordering::SeqCst) <= budget {
        return;
    }
    let Some(store) = store() else {
        return;
    };
    if !store.has_disk() {
        return;
    }
    let cells: Vec<Arc<SimCell>> = lock(cache()).values().map(Arc::clone).collect();
    for cell in cells {
        if RETAINED.load(Ordering::SeqCst) <= budget {
            break;
        }
        let len = cell.payload_len.load(Ordering::SeqCst);
        if len == 0 || !store.durable(cell.disk_key) {
            continue;
        }
        let mut state = lock(&cell.state);
        if matches!(&*state, CellState::Ready(_)) {
            *state = CellState::Spilled;
            drop(state);
            cell.payload_len.store(0, Ordering::SeqCst);
            RETAINED.fetch_sub(len, Ordering::SeqCst);
            SPILLS.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Runs (or replays) `bench` under `policy` on `config`, re-emitting the
/// simulation's diagnostics into the current output capture. This is the
/// single entry point behind [`runner::run_benchmark_with_config`].
pub fn run_cached(policy: PolicyKind, bench: &BenchmarkSpec, config: &GpuConfig) -> BenchResult {
    let outcome = outcome_for(policy, bench, config);
    report::emit(format_args!("{}", outcome.diag));
    let result = outcome.result.clone();
    drop(outcome);
    enforce_retention();
    result
}

/// One simulation request for the batch APIs.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Policy to evaluate.
    pub policy: PolicyKind,
    /// Benchmark to run.
    pub bench: BenchmarkSpec,
    /// Machine configuration.
    pub config: GpuConfig,
}

/// Runs a batch of simulations as pool subtasks, saturating every
/// driver worker, and returns results in submission order. Diagnostics
/// land in the calling experiment's capture in submission order, so a
/// batched experiment prints the same bytes at any `--jobs` level.
///
/// Duplicate keys within one batch are fine: the cache computes the
/// first and the rest await the same cell.
pub fn run_batch(jobs: Vec<SimJob>) -> Vec<BenchResult> {
    let tasks: Vec<Box<dyn FnOnce() -> BenchResult + Send>> = jobs
        .into_iter()
        .map(|job| {
            Box::new(move || run_cached(job.policy, &job.bench, &job.config))
                as Box<dyn FnOnce() -> BenchResult + Send>
        })
        .collect();
    pool::run_subtasks(tasks)
}

/// [`run_batch`] over the cross product `policies` × `benches` on one
/// config; returns results grouped per benchmark, policies in the given
/// order (`result[b][p]` = `benches[b]` under `policies[p]`).
pub fn run_matrix(
    policies: &[PolicyKind],
    benches: &[BenchmarkSpec],
    config: &GpuConfig,
) -> Vec<Vec<BenchResult>> {
    let jobs: Vec<SimJob> = benches
        .iter()
        .flat_map(|bench| {
            policies.iter().map(|&policy| SimJob {
                policy,
                bench: bench.clone(),
                config: config.clone(),
            })
        })
        .collect();
    let mut flat = run_batch(jobs).into_iter();
    benches
        .iter()
        .map(|_| (0..policies.len()).filter_map(|_| flat.next()).collect())
        .collect()
}

/// [`run_matrix`] on the default experiment machine
/// ([`runner::experiment_config`]).
pub fn run_matrix_default(
    policies: &[PolicyKind],
    benches: &[BenchmarkSpec],
) -> Vec<Vec<BenchResult>> {
    run_matrix(policies, benches, &runner::experiment_config())
}

/// Simulation-service counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulations requested through the service.
    pub requests: u64,
    /// Requests served by a cell already resolved in this process
    /// (the original memo-cache hit).
    pub replay_hits: u64,
    /// Requests served from the persistent store's in-memory tier.
    pub store_mem_hits: u64,
    /// Requests served from the persistent store's disk tier.
    pub store_disk_hits: u64,
    /// Requests that ran the simulator for the first time.
    pub computed: u64,
    /// Requests that re-ran the simulator because a spilled outcome was
    /// no longer revivable from the store.
    pub recomputed: u64,
    /// Cells first resolved from the persistent store.
    pub store_fills: u64,
    /// Resident outcomes demoted to the store under memory pressure.
    pub spills: u64,
    /// `--store-verify` divergences detected.
    pub verify_failures: u64,
}

impl SimStats {
    /// Requests that did not run the simulator, from any tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.replay_hits + self.store_mem_hits + self.store_disk_hits
    }

    /// Requests that genuinely ran the simulator.
    #[must_use]
    pub fn simulated(&self) -> u64 {
        self.computed + self.recomputed
    }
}

/// The service's counters since process start.
#[must_use]
pub fn stats() -> SimStats {
    SimStats {
        requests: REQUESTS.load(Ordering::SeqCst),
        replay_hits: REPLAY_HITS.load(Ordering::SeqCst),
        store_mem_hits: STORE_MEM_HITS.load(Ordering::SeqCst),
        store_disk_hits: STORE_DISK_HITS.load(Ordering::SeqCst),
        computed: COMPUTED.load(Ordering::SeqCst),
        recomputed: RECOMPUTED.load(Ordering::SeqCst),
        store_fills: STORE_FILLS.load(Ordering::SeqCst),
        spills: SPILLS.load(Ordering::SeqCst),
        verify_failures: VERIFY_FAILURES.load(Ordering::SeqCst),
    }
}

/// Checks the service's "each unique simulation ran exactly once"
/// contract: every distinct key was resolved exactly once (by compute
/// or by store fill), and every request is accounted to exactly one
/// path. Spill revivals that recompute are the one deliberate
/// exception — corruption costs a recompute, never a wrong answer —
/// and they are tracked separately in [`SimStats::recomputed`].
///
/// # Errors
///
/// Returns a description of the violated invariant.
pub fn verify_each_sim_ran_once() -> Result<(), String> {
    let s = stats();
    let unique = lock(cache()).len() as u64;
    if s.computed + s.store_fills != unique {
        return Err(format!(
            "sim cache invariant violated: {} computes + {} store fills for {unique} unique keys",
            s.computed, s.store_fills
        ));
    }
    if s.requests != s.hits() + s.computed + s.recomputed {
        return Err(format!(
            "sim cache invariant violated: {} requests != {} hits + {} computed + {} recomputed",
            s.requests,
            s.hits(),
            s.computed,
            s.recomputed
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nw() -> BenchmarkSpec {
        latte_workloads::benchmark("NW").expect("NW exists")
    }

    #[test]
    fn cache_replays_results_and_diagnostics_identically() {
        let bench = nw();
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let resolved_before = stats().computed + stats().store_fills;

        report::begin_capture();
        let cold = run_cached(PolicyKind::StaticBdi, &bench, &config);
        let cold_text = report::end_capture();
        let resolved_mid = stats().computed + stats().store_fills;

        report::begin_capture();
        let warm = run_cached(PolicyKind::StaticBdi, &bench, &config);
        let warm_text = report::end_capture();
        let resolved_after = stats().computed + stats().store_fills;

        assert_eq!(cold.stats.cycles, warm.stats.cycles);
        assert_eq!(cold.energy.total_nj(), warm.energy.total_nj());
        assert_eq!(cold_text, warm_text, "replayed diagnostics must match");
        // Other tests run concurrently against the same process-wide
        // cache, so assert deltas local to this key: the warm request
        // resolved nothing new.
        assert!(resolved_mid > resolved_before);
        assert_eq!(resolved_mid, resolved_after);
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let bench = nw();
        let a = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let b = GpuConfig {
            num_sms: 1,
            l1_hit_latency: a.l1_hit_latency + 1,
            ..GpuConfig::small()
        };
        let ra = run_cached(PolicyKind::Baseline, &bench, &a);
        let rb = run_cached(PolicyKind::Baseline, &bench, &b);
        assert_ne!(ra.stats.cycles, rb.stats.cycles);
    }

    #[test]
    fn batch_matches_serial_results() {
        let bench = nw();
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let policies = [PolicyKind::Baseline, PolicyKind::StaticSc];
        let matrix = run_matrix(&policies, std::slice::from_ref(&bench), &config);
        assert_eq!(matrix.len(), 1);
        assert_eq!(matrix[0].len(), 2);
        for (i, &policy) in policies.iter().enumerate() {
            let serial = run_cached(policy, &bench, &config);
            assert_eq!(matrix[0][i].policy, policy);
            assert_eq!(matrix[0][i].stats.cycles, serial.stats.cycles);
        }
        assert!(verify_each_sim_ran_once().is_ok());
    }

    /// End-to-end store integration inside one process: results are
    /// written through, spilling demotes resident outcomes, and a
    /// spilled outcome revives byte-identically from the store.
    #[test]
    fn store_backed_replay_and_spill() {
        let dir = std::env::temp_dir().join(format!("latte-sim-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // First configure wins; every test in this process then shares
        // the store, which the counter-delta assertions tolerate.
        let _ = configure_store(StoreConfig::at(dir.clone()));
        if !store_is_durable() {
            // Another test (or a prior failed run) already configured a
            // different store; nothing to assert against.
            return;
        }
        let bench = nw();
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };

        let before = stats();
        report::begin_capture();
        let cold = run_cached(PolicyKind::StaticBpc, &bench, &config);
        let cold_text = report::end_capture();
        flush_store();

        // Force a spill of everything durably backed, then revive.
        set_retained_budget(0);
        report::begin_capture();
        let _ = run_cached(PolicyKind::Baseline, &bench, &config);
        let _ = report::end_capture();
        set_retained_budget(DEFAULT_RETAINED_BUDGET);

        report::begin_capture();
        let warm = run_cached(PolicyKind::StaticBpc, &bench, &config);
        let warm_text = report::end_capture();
        let after = stats();

        assert_eq!(cold.stats, warm.stats, "revived result must be identical");
        assert_eq!(cold_text, warm_text, "revived diagnostics must match");
        assert!(after.spills > before.spills, "budget 0 must have spilled");
        assert_eq!(
            after.recomputed, before.recomputed,
            "revival must come from the store, not a recompute"
        );
        assert!(verify_each_sim_ran_once().is_ok());
    }
}
