//! `latte-bench` — the experiment harness regenerating every table and
//! figure of the LATTE-CC paper (HPCA 2018).
//!
//! ```text
//! latte-bench [--inject <rate> [--seed <n>]] <experiment> [<experiment> ...]
//! latte-bench all
//! ```
//!
//! `--inject <rate>` enables deterministic bit-flip fault injection into
//! compressed L1 lines at the given per-hit probability for every
//! experiment that follows (seeded by `--seed`, default 42), exercising
//! the detect-and-refetch recovery path and LATTE-CC's integrity
//! demotion.

use latte_bench::experiments as exp;
use latte_gpusim::FaultConfig;
use std::io;

/// One registered experiment: name, description, entry point.
type Experiment = (&'static str, &'static str, fn() -> io::Result<()>);

const EXPERIMENTS: &[Experiment] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
    ("fig2", "per-benchmark compression ratios", exp::fig02::run),
    ("fig3", "zero-latency capacity upper bound", exp::fig03::run),
    ("fig4", "decompression-latency-only degradation", exp::fig04::run),
    ("fig5", "SS latency tolerance over time", exp::fig05::run),
    ("fig6", "static vs adaptive potential (perf + energy)", exp::fig06::run),
    ("table2", "simulated GPU configuration", exp::table2::run),
    ("table3", "benchmarks + cache-sensitivity classification", exp::table3::run),
    ("fig11", "speedups: BDI / SC / LATTE-CC / Kernel-OPT", exp::fig11::run),
    ("fig12", "L1 miss reductions", exp::fig12::run),
    ("fig13", "normalised GPU energy", exp::fig13::run),
    ("fig14", "LATTE-CC energy-saving breakdown", exp::fig14::run),
    ("fig15", "Kernel-OPT agreement analysis", exp::fig15::run),
    ("fig16", "SS effective cache capacity over time", exp::fig16::run),
    ("fig17", "adaptive policy comparison", exp::fig17::run),
    ("fig18", "LATTE-CC-BDI-BPC variant", exp::fig18::run),
    ("sens-cache", "48 KB L1 sensitivity", exp::sens_cache::run),
    ("sens-write", "write-policy sensitivity (write-avoid vs write-allocate)", exp::sens_write::run),
    ("summary", "headline aggregate numbers", exp::summary::run),
    ("ablations", "design-choice ablation studies", exp::ablations::run),
    ("trace", "LATTE-CC decision trace on SS (Fig 10-style)", exp::trace::run),
    ("paper-machine", "C-Sens comparison on the full 15-SM Table II machine", exp::paper_machine::run),
    ("multi-mode", "4-mode LATTE-CC extension (None/BDI/BPC/SC)", exp::multi_mode::run),
    ("resilience", "fault-injection resilience sweep (bit-flip rates 1e-6..1e-3)", exp::resilience::run),
];

fn usage() -> ! {
    eprintln!("usage: latte-bench [--inject <rate> [--seed <n>]] <experiment> [<experiment> ...] | all\n");
    eprintln!("  --inject <rate>  flip one bit per compressed L1 hit with this probability");
    eprintln!("  --seed <n>       fault-injection seed (default 42; same seed => same faults)\n");
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:12} {desc}");
    }
    std::process::exit(2);
}

/// Extracts `--inject <rate>` / `--seed <n>` from `args` (removing them),
/// returning the fault configuration to install, if any.
fn parse_fault_flags(args: &mut Vec<String>) -> Option<FaultConfig> {
    let mut rate: Option<f64> = None;
    let mut seed: u64 = 42;
    let mut i = 0;
    while i < args.len() {
        let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> String {
            if i + 1 >= args.len() {
                eprintln!("{flag} requires a value\n");
                usage();
            }
            args.remove(i + 1)
        };
        match args[i].as_str() {
            "--inject" => {
                let v = take_value(args, i, "--inject");
                match v.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => rate = Some(r),
                    _ => {
                        eprintln!("--inject expects a probability in [0, 1], got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--seed" => {
                let v = take_value(args, i, "--seed");
                match v.parse::<u64>() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("--seed expects an integer, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    rate.map(|bitflip_rate| FaultConfig {
        seed,
        bitflip_rate,
        ..FaultConfig::default()
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(faults) = parse_fault_flags(&mut args) {
        latte_bench::set_fault_injection(faults);
        println!(
            "[fault injection on: bit-flip rate {:e} per compressed hit, seed {}]",
            faults.bitflip_rate, faults.seed
        );
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS
                    .iter()
                    .find(|(name, _, _)| name.eq_ignore_ascii_case(a))
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}\n");
                        usage()
                    })
            })
            .collect()
    };
    let mut failed = 0usize;
    for (name, _, run) in selected {
        println!("==================== {name} ====================");
        let start = std::time::Instant::now();
        match run() {
            Ok(()) => println!("[{name} done in {:.1}s]\n", start.elapsed().as_secs_f64()),
            Err(e) => {
                failed += 1;
                eprintln!(
                    "[{name} FAILED after {:.1}s: {e}]\n",
                    start.elapsed().as_secs_f64()
                );
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} experiment(s) failed");
        std::process::exit(1);
    }
}
