//! `latte-bench` — the experiment harness regenerating every table and
//! figure of the LATTE-CC paper (HPCA 2018).
//!
//! ```text
//! latte-bench [options] <experiment> [<experiment> ...]
//! latte-bench [options] all
//! ```
//!
//! Experiments run on a work-stealing thread pool (`--jobs`, default =
//! available parallelism). The run is deterministic: `--jobs N` writes
//! byte-identical `results/` files to `--jobs 1`; only the order of the
//! finished-experiment blocks on stdout may differ.
//!
//! `--inject <rate>` enables deterministic bit-flip fault injection into
//! compressed L1 lines at the given per-hit probability for every
//! experiment that follows (seeded by `--seed`, default 42), exercising
//! the detect-and-refetch recovery path and LATTE-CC's integrity
//! demotion. `--inject-fill <rate>` does the same for the L2/DRAM fill
//! return path (parity-detected, retried after one L2 round trip).
//!
//! The controller knobs that used to be hidden `LATTE_*` environment
//! variables are now explicit flags: `--miss-latency`,
//! `--tolerance-scale`, `--force-mode`, `--debug-decide`.

use latte_bench::experiments as exp;
use latte_bench::{Experiment, LatteOverrides};
use latte_core::CompressionMode;
use latte_gpusim::FaultConfig;

const EXPERIMENTS: &[Experiment] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
    ("fig2", "per-benchmark compression ratios", exp::fig02::run),
    ("fig3", "zero-latency capacity upper bound", exp::fig03::run),
    ("fig4", "decompression-latency-only degradation", exp::fig04::run),
    ("fig5", "SS latency tolerance over time", exp::fig05::run),
    ("fig6", "static vs adaptive potential (perf + energy)", exp::fig06::run),
    ("table2", "simulated GPU configuration", exp::table2::run),
    ("table3", "benchmarks + cache-sensitivity classification", exp::table3::run),
    ("fig11", "speedups: BDI / SC / LATTE-CC / Kernel-OPT", exp::fig11::run),
    ("fig12", "L1 miss reductions", exp::fig12::run),
    ("fig13", "normalised GPU energy", exp::fig13::run),
    ("fig14", "LATTE-CC energy-saving breakdown", exp::fig14::run),
    ("fig15", "Kernel-OPT agreement analysis", exp::fig15::run),
    ("fig16", "SS effective cache capacity over time", exp::fig16::run),
    ("fig17", "adaptive policy comparison", exp::fig17::run),
    ("fig18", "LATTE-CC-BDI-BPC variant", exp::fig18::run),
    ("sens-cache", "48 KB L1 sensitivity", exp::sens_cache::run),
    ("sens-write", "write-policy sensitivity (write-avoid vs write-allocate)", exp::sens_write::run),
    ("summary", "headline aggregate numbers", exp::summary::run),
    ("ablations", "design-choice ablation studies", exp::ablations::run),
    ("trace", "LATTE-CC decision trace on SS (Fig 10-style)", exp::trace::run),
    ("paper-machine", "C-Sens comparison on the full 15-SM Table II machine", exp::paper_machine::run),
    ("multi-mode", "4-mode LATTE-CC extension (None/BDI/BPC/SC)", exp::multi_mode::run),
    ("resilience", "fault-injection resilience sweep (bit-flip rates 1e-6..1e-3)", exp::resilience::run),
    ("verify", "differential-oracle verification: clean shadow-checked runs + mutation detection", exp::verify::run),
    ("fig_writeback", "write-back data path: LATTE-CC vs Assist-Warp vs Baseline on write-heavy workloads", exp::fig_writeback::run),
];

fn usage() -> ! {
    eprintln!("usage: latte-bench [options] <experiment> [<experiment> ...] | all\n");
    eprintln!("options:");
    eprintln!("  --jobs <n>             worker threads (default: available parallelism");
    eprintln!("                         divided by --sim-threads; results are byte-identical");
    eprintln!("                         for every n)");
    eprintln!("  --sim-threads <n>      shard each simulation's SMs across n worker threads");
    eprintln!("                         behind a deterministic epoch barrier (default 1 = the");
    eprintln!("                         serial loop; results are byte-identical for every n)");
    eprintln!("  --inject <rate>        flip one bit per compressed L1 hit with this probability");
    eprintln!("  --inject-fill <rate>   flip one bit per L2/DRAM fill return with this probability");
    eprintln!("  --inject-wakeup-drop <rate>");
    eprintln!("                         lose a refill's wakeup notification with this probability");
    eprintln!("                         (unrecoverable: exercises the deadlock watchdog)");
    eprintln!("  --write-back           run the L1 as write-back/write-allocate with dirty");
    eprintln!("                         compressed lines (default: write-through); stores carry");
    eprintln!("                         data and dirty victims write back to L2/DRAM");
    eprintln!("  --inject-writeback <rate>");
    eprintln!("                         parity-fault an outbound dirty write-back with this");
    eprintln!("                         probability (stats-only retry; requires --write-back)");
    eprintln!("  --no-writeback         deliberate mutation: silently drop every dirty");
    eprintln!("                         write-back (requires --write-back; used to demonstrate");
    eprintln!("                         that --shadow-check catches lost stores)");
    eprintln!("  --seed <n>             fault-injection seed (default 42; same seed => same faults)");
    eprintln!("  --miss-latency <c>     AMAT effective miss-latency constant (default 150)");
    eprintln!("  --tolerance-scale <s>  latency-tolerance scale factor (default 2)");
    eprintln!("  --force-mode <m>       pin the controller: none | lowlatency | highcapacity");
    eprintln!("  --shadow-check         attach the differential oracle to every simulation;");
    eprintln!("                         exit nonzero if any run diverges from the reference model");
    eprintln!("  --no-fault-recovery    deliberate mutation: detected bit flips are consumed");
    eprintln!("                         instead of refetched (requires an --inject* flag; used to");
    eprintln!("                         demonstrate that --shadow-check catches real corruption)");
    eprintln!("  --debug-decide         print the controller's per-decision trace");
    eprintln!("  --store <dir>          persist simulation results in a crash-safe store at <dir>;");
    eprintln!("                         a warm rerun replays every result byte-identically without");
    eprintln!("                         simulating (corrupt entries are quarantined and recomputed)");
    eprintln!("  --store-verify         re-simulate every store hit and byte-compare it against");
    eprintln!("                         the stored record; exit nonzero on any divergence");
    eprintln!("  --inject-store <rate>  deterministically corrupt store reads at this probability");
    eprintln!("                         (truncation / bit flip / stale schema / deletion, seeded");
    eprintln!("                         by --seed; requires --store)");
    eprintln!("  --timings              after the run, print per-experiment / per-simulation");
    eprintln!("                         wall times and the simulation cache's hit statistics\n");
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:12} {desc}");
    }
    std::process::exit(2);
}

/// Command-line options parsed (and removed) from the argument list
/// before the remaining words are matched against experiment names.
struct Options {
    jobs: usize,
    sim_threads: usize,
    write_back: bool,
    faults: Option<FaultConfig>,
    overrides: LatteOverrides,
    timings: bool,
    shadow_check: bool,
    store_dir: Option<std::path::PathBuf>,
    store_verify: bool,
    inject_store_rate: Option<f64>,
    seed: u64,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_force_mode(v: &str) -> Option<CompressionMode> {
    match v.to_ascii_lowercase().as_str() {
        "none" => Some(CompressionMode::None),
        "lowlatency" | "low-latency" | "bdi" => Some(CompressionMode::LowLatency),
        "highcapacity" | "high-capacity" | "sc" => Some(CompressionMode::HighCapacity),
        _ => None,
    }
}

/// Extracts every `--flag [value]` option from `args` (removing them).
#[allow(clippy::too_many_lines)]
fn parse_options(args: &mut Vec<String>) -> Options {
    let mut jobs: Option<usize> = None;
    let mut sim_threads = 1usize;
    let mut bitflip_rate: Option<f64> = None;
    let mut fill_bitflip_rate: Option<f64> = None;
    let mut wakeup_drop_rate: Option<f64> = None;
    let mut writeback_fault_rate: Option<f64> = None;
    let mut write_back = false;
    let mut no_writeback = false;
    let mut seed: u64 = 42;
    let mut overrides = LatteOverrides::default();
    let mut timings = false;
    let mut shadow_check = false;
    let mut no_fault_recovery = false;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut store_verify = false;
    let mut inject_store_rate: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> String {
            if i + 1 >= args.len() {
                eprintln!("{flag} requires a value\n");
                usage();
            }
            args.remove(i + 1)
        };
        let parse_rate = |flag: &str, v: &str| -> f64 {
            match v.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => r,
                _ => {
                    eprintln!("{flag} expects a probability in [0, 1], got {v}\n");
                    usage();
                }
            }
        };
        match args[i].as_str() {
            "--jobs" => {
                let v = take_value(args, i, "--jobs");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs expects a positive integer, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--sim-threads" => {
                let v = take_value(args, i, "--sim-threads");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => sim_threads = n,
                    _ => {
                        eprintln!("--sim-threads expects a positive integer, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--inject" => {
                let v = take_value(args, i, "--inject");
                bitflip_rate = Some(parse_rate("--inject", &v));
                args.remove(i);
            }
            "--inject-fill" => {
                let v = take_value(args, i, "--inject-fill");
                fill_bitflip_rate = Some(parse_rate("--inject-fill", &v));
                args.remove(i);
            }
            "--write-back" => {
                write_back = true;
                args.remove(i);
            }
            "--inject-writeback" => {
                let v = take_value(args, i, "--inject-writeback");
                writeback_fault_rate = Some(parse_rate("--inject-writeback", &v));
                args.remove(i);
            }
            "--no-writeback" => {
                no_writeback = true;
                args.remove(i);
            }
            "--inject-wakeup-drop" => {
                let v = take_value(args, i, "--inject-wakeup-drop");
                wakeup_drop_rate = Some(parse_rate("--inject-wakeup-drop", &v));
                args.remove(i);
            }
            "--seed" => {
                let v = take_value(args, i, "--seed");
                match v.parse::<u64>() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("--seed expects an integer, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--miss-latency" => {
                let v = take_value(args, i, "--miss-latency");
                match v.parse::<f64>() {
                    Ok(c) if c > 0.0 && c.is_finite() => overrides.miss_latency = Some(c),
                    _ => {
                        eprintln!("--miss-latency expects a positive number of cycles, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--tolerance-scale" => {
                let v = take_value(args, i, "--tolerance-scale");
                match v.parse::<f64>() {
                    Ok(s) if s >= 0.0 && s.is_finite() => overrides.tolerance_scale = Some(s),
                    _ => {
                        eprintln!("--tolerance-scale expects a non-negative number, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--force-mode" => {
                let v = take_value(args, i, "--force-mode");
                match parse_force_mode(&v) {
                    Some(mode) => overrides.force_mode = Some(mode),
                    None => {
                        eprintln!("--force-mode expects none | lowlatency | highcapacity, got {v}\n");
                        usage();
                    }
                }
                args.remove(i);
            }
            "--debug-decide" => {
                overrides.debug_decide = true;
                args.remove(i);
            }
            "--store" => {
                let v = take_value(args, i, "--store");
                store_dir = Some(std::path::PathBuf::from(v));
                args.remove(i);
            }
            "--store-verify" => {
                store_verify = true;
                args.remove(i);
            }
            "--inject-store" => {
                let v = take_value(args, i, "--inject-store");
                inject_store_rate = Some(parse_rate("--inject-store", &v));
                args.remove(i);
            }
            "--timings" => {
                timings = true;
                args.remove(i);
            }
            "--shadow-check" => {
                shadow_check = true;
                args.remove(i);
            }
            "--no-fault-recovery" => {
                no_fault_recovery = true;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    if (writeback_fault_rate.is_some() || no_writeback) && !write_back {
        eprintln!("--inject-writeback / --no-writeback require --write-back\n");
        usage();
    }
    let faults = (bitflip_rate.is_some()
        || fill_bitflip_rate.is_some()
        || wakeup_drop_rate.is_some()
        || writeback_fault_rate.is_some()
        || no_writeback)
        .then(|| FaultConfig {
            seed,
            bitflip_rate: bitflip_rate.unwrap_or(0.0),
            fill_bitflip_rate: fill_bitflip_rate.unwrap_or(0.0),
            wakeup_drop_rate: wakeup_drop_rate.unwrap_or(0.0),
            writeback_fault_rate: writeback_fault_rate.unwrap_or(0.0),
            drop_writebacks: no_writeback,
            disable_recovery: no_fault_recovery,
            ..FaultConfig::default()
        });
    if no_fault_recovery && faults.is_none() {
        eprintln!("--no-fault-recovery only makes sense with an --inject* flag\n");
        usage();
    }
    if (inject_store_rate.is_some() || store_verify) && store_dir.is_none() {
        eprintln!("--inject-store / --store-verify require --store <dir>\n");
        usage();
    }
    // Experiment-level jobs and intra-simulation shards multiply into
    // total thread demand, so an unspecified --jobs shares the core
    // budget with --sim-threads instead of oversubscribing the host.
    let jobs = jobs.unwrap_or_else(|| (default_jobs() / sim_threads).max(1));
    Options {
        jobs,
        sim_threads,
        write_back,
        faults,
        overrides,
        timings,
        shadow_check,
        store_dir,
        store_verify,
        inject_store_rate,
        seed,
    }
}

/// Environment variables that used to configure `LatteConfig::paper`
/// (removed: they were hidden process-global state, racy under the
/// parallel experiment driver). Setting any of them now only triggers a
/// warning on stderr. This check lives in the driver binary — the only
/// place in the workspace allowed to touch the process environment or
/// write to stderr directly.
const REMOVED_ENV_KNOBS: [(&str, &str); 4] = [
    ("LATTE_MISS_LATENCY", "--miss-latency / LatteConfig::with_miss_latency"),
    ("LATTE_TOLERANCE_SCALE", "--tolerance-scale / LatteConfig::with_tolerance_scale"),
    ("LATTE_FORCE_MODE", "--force-mode / LatteConfig::force_mode"),
    ("LATTE_DEBUG_DECIDE", "--debug-decide / LatteConfig::decide_trace"),
];

/// Warns if any removed `LATTE_*` env knob is still set, so stale
/// calibration scripts fail loudly instead of silently running the
/// defaults.
fn warn_on_removed_env_knobs() {
    for (var, replacement) in REMOVED_ENV_KNOBS {
        if std::env::var_os(var).is_some() {
            eprintln!(
                "latte-bench: warning: the {var} environment variable is no longer read \
                 (env knobs were hidden process-global state, racy under the parallel \
                 experiment driver); it is IGNORED. Use {replacement} instead."
            );
        }
    }
}

fn main() {
    warn_on_removed_env_knobs();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&mut args);
    if opts.sim_threads > 1 {
        latte_bench::set_sim_threads(opts.sim_threads);
        println!(
            "[sim threads: {} — each simulation's SMs sharded behind a deterministic \
             epoch barrier; results are byte-identical to --sim-threads 1]",
            opts.sim_threads
        );
    }
    if opts.write_back {
        latte_bench::set_write_back(true);
        println!("[write-back on: L1 runs write-back/write-allocate with dirty compressed lines]");
    }
    if let Some(faults) = opts.faults {
        latte_bench::set_fault_injection(faults);
        println!(
            "[fault injection on: L1-hit bit-flip rate {:e}, fill bit-flip rate {:e}, \
             wakeup-drop rate {:e}, write-back fault rate {:e}{}, seed {}]",
            faults.bitflip_rate,
            faults.fill_bitflip_rate,
            faults.wakeup_drop_rate,
            faults.writeback_fault_rate,
            if faults.drop_writebacks {
                ", DROPPING dirty write-backs (planted mutation)"
            } else {
                ""
            },
            faults.seed
        );
    }
    if opts.overrides != LatteOverrides::default() {
        latte_bench::set_latte_overrides(opts.overrides);
    }
    if opts.shadow_check {
        latte_bench::set_shadow_check(true);
        println!("[shadow check on: every simulation runs against the differential oracle]");
    }
    if let Some(dir) = &opts.store_dir {
        let mut config = latte_store::StoreConfig::at(dir.clone());
        if let Some(rate) = opts.inject_store_rate {
            config.faults = Some(latte_store::StoreFaultConfig {
                seed: opts.seed,
                rate,
            });
            println!("[store fault injection on: rate {rate:e}, seed {}]", opts.seed);
        }
        match latte_bench::sim::configure_store(config) {
            Ok(report) => {
                for warning in &report.warnings {
                    eprintln!("latte-bench: warning: {warning}");
                }
                if report.disk_enabled {
                    let r = report.recovery;
                    println!(
                        "[store at {} — recovery: {} torn removed, {} adopted, \
                         {} quarantined, {} missing dropped{}]",
                        dir.display(),
                        r.torn_removed,
                        r.adopted,
                        r.quarantined,
                        r.missing_dropped,
                        if r.index_rebuilt { ", index rebuilt" } else { "" }
                    );
                }
            }
            Err(err) => {
                eprintln!("latte-bench: {err}");
                std::process::exit(2);
            }
        }
        if opts.store_verify {
            latte_bench::sim::set_store_verify(true);
            println!("[store verify on: every store hit is re-simulated and byte-compared]");
        }
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS
                    .iter()
                    .find(|(name, _, _)| name.eq_ignore_ascii_case(a))
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}\n");
                        usage()
                    })
            })
            .collect()
    };
    latte_bench::timing::set_report_enabled(opts.timings);
    let (failed, outcomes) = latte_bench::run_experiments_with_outcomes(&selected, opts.jobs);
    // Make every pending store write durable (and its counters final)
    // before the timing report reads them.
    latte_bench::sim::shutdown_store();
    if opts.timings {
        let experiments: Vec<(&str, f64)> =
            outcomes.iter().map(|o| (o.name, o.secs)).collect();
        latte_bench::timing::print_report(&experiments, &latte_bench::sim::stats());
    }
    // The service's "each unique simulation ran exactly once" contract is
    // cheap to check and load-bearing for both correctness and the perf
    // model, so assert it on every invocation.
    if let Err(violation) = latte_bench::sim::verify_each_sim_ran_once() {
        eprintln!("latte-bench: {violation}");
        std::process::exit(1);
    }
    if opts.store_verify {
        let verify_failures = latte_bench::sim::stats().verify_failures;
        if verify_failures > 0 {
            eprintln!(
                "latte-bench: --store-verify found {verify_failures} stored record(s) \
                 diverging from a fresh recompute — see the [store-verify] lines above"
            );
            std::process::exit(1);
        }
    }
    if opts.shadow_check {
        let tally = latte_bench::shadow_tally();
        if tally.violations > 0 {
            eprintln!(
                "latte-bench: shadow check found {} violation(s) across {} simulation(s) \
                 ({} loads checked) — see the [shadow] lines above",
                tally.violations, tally.sims, tally.loads_checked
            );
            std::process::exit(1);
        }
    }
    if failed > 0 {
        eprintln!("{failed} experiment(s) failed");
        std::process::exit(1);
    }
}
