//! `latte-bench` — the experiment harness regenerating every table and
//! figure of the LATTE-CC paper (HPCA 2018).
//!
//! ```text
//! latte-bench <experiment> [<experiment> ...]
//! latte-bench all
//! ```

use latte_bench::experiments as exp;

const EXPERIMENTS: &[(&str, &str, fn())] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
    ("fig2", "per-benchmark compression ratios", exp::fig02::run),
    ("fig3", "zero-latency capacity upper bound", exp::fig03::run),
    ("fig4", "decompression-latency-only degradation", exp::fig04::run),
    ("fig5", "SS latency tolerance over time", exp::fig05::run),
    ("fig6", "static vs adaptive potential (perf + energy)", exp::fig06::run),
    ("table2", "simulated GPU configuration", exp::table2::run),
    ("table3", "benchmarks + cache-sensitivity classification", exp::table3::run),
    ("fig11", "speedups: BDI / SC / LATTE-CC / Kernel-OPT", exp::fig11::run),
    ("fig12", "L1 miss reductions", exp::fig12::run),
    ("fig13", "normalised GPU energy", exp::fig13::run),
    ("fig14", "LATTE-CC energy-saving breakdown", exp::fig14::run),
    ("fig15", "Kernel-OPT agreement analysis", exp::fig15::run),
    ("fig16", "SS effective cache capacity over time", exp::fig16::run),
    ("fig17", "adaptive policy comparison", exp::fig17::run),
    ("fig18", "LATTE-CC-BDI-BPC variant", exp::fig18::run),
    ("sens-cache", "48 KB L1 sensitivity", exp::sens_cache::run),
    ("sens-write", "write-policy sensitivity (write-avoid vs write-allocate)", exp::sens_write::run),
    ("summary", "headline aggregate numbers", exp::summary::run),
    ("ablations", "design-choice ablation studies", exp::ablations::run),
    ("trace", "LATTE-CC decision trace on SS (Fig 10-style)", exp::trace::run),
    ("paper-machine", "C-Sens comparison on the full 15-SM Table II machine", exp::paper_machine::run),
    ("multi-mode", "4-mode LATTE-CC extension (None/BDI/BPC/SC)", exp::multi_mode::run),
];

fn usage() -> ! {
    eprintln!("usage: latte-bench <experiment> [<experiment> ...] | all\n");
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:12} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&(&str, &str, fn())> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS
                    .iter()
                    .find(|(name, _, _)| name.eq_ignore_ascii_case(a))
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}\n");
                        usage()
                    })
            })
            .collect()
    };
    for (name, _, run) in selected {
        println!("==================== {name} ====================");
        let start = std::time::Instant::now();
        run();
        println!("[{name} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
