//! Shadow-checked runs keep the driver's determinism contract: with the
//! differential oracle attached to every simulation, `--jobs N` must
//! still be byte-identical to `--jobs 1` and a warm memo cache
//! indistinguishable from a cold one — including the `[shadow]` summary
//! lines replayed out of the cache. A separate test binary from
//! `determinism.rs` because the shadow-check flag and the simulation
//! memo cache are process-global (the flag is part of the memo key, so
//! it must be set before the first simulation runs).

use latte_bench::experiments::{self as exp, set_results_dir};
use latte_bench::{run_experiments_with_outcomes, set_shadow_check, shadow_tally, sim, Experiment};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// A cheap subset that still spans policies: fig1 sweeps hit latency
/// over the baseline, table1 runs every compression algorithm.
const CHEAP: &[Experiment] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("latte-shadow-det-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read result file"));
    }
    files
}

/// One test for the same reason as `determinism.rs`: the results-dir
/// override, the shadow flag and the memo cache are all process-global.
#[test]
fn shadow_checked_parallel_warm_run_matches_serial_cold_run() {
    assert!(
        set_shadow_check(true),
        "this binary must be the first to decide the shadow flag"
    );
    let selected: Vec<&Experiment> = CHEAP.iter().collect();
    let dir = fresh_dir("runs");
    set_results_dir(Some(dir.clone()));

    let (failed, serial_outcomes) = run_experiments_with_outcomes(&selected, 1);
    assert_eq!(failed, 0, "serial shadow-checked run must succeed");
    let serial = snapshot(&dir);
    let tally = shadow_tally();
    assert!(tally.sims > 0, "shadow-checked runs must be tallied");
    assert!(tally.loads_checked > 0, "the oracle must compare real loads");
    assert_eq!(tally.violations, 0, "clean experiments must verify clean");
    let computed_cold = sim::stats().computed;

    // The warm rerun flips the process-global sim-threads setting too:
    // `sim_threads` is excluded from the memo key, so results computed
    // serially must replay under `--sim-threads 2` without a single
    // recompute (and byte-identically — checked below).
    latte_bench::set_sim_threads(2);
    let (failed, parallel_outcomes) = run_experiments_with_outcomes(&selected, 2);
    set_results_dir(None);
    latte_bench::set_sim_threads(1);
    assert_eq!(failed, 0, "parallel shadow-checked run must succeed");
    let parallel = snapshot(&dir);
    let computed_warm = sim::stats().computed;
    assert_eq!(
        computed_warm, computed_cold,
        "warm-cache shadow-checked re-run must not recompute any simulation \
         even with --sim-threads flipped (it is excluded from the memo key)"
    );
    sim::verify_each_sim_ran_once().expect("one compute per unique simulation");
    assert_eq!(shadow_tally().violations, 0);

    let outputs = |outcomes: Vec<latte_bench::ExperimentOutcome>| {
        outcomes
            .into_iter()
            .map(|o| {
                assert!(o.result.is_ok(), "{} must succeed", o.name);
                (o.name, o.output)
            })
            .collect::<BTreeMap<_, _>>()
    };
    let serial_out = outputs(serial_outcomes);
    let parallel_out = outputs(parallel_outcomes);
    assert!(
        serial_out.values().any(|o| o.contains("[shadow]")),
        "captured output must include the oracle's per-simulation summary"
    );
    assert_eq!(
        serial_out, parallel_out,
        "shadow-checked output differs between serial-cold and parallel-warm runs"
    );
    assert_eq!(serial, parallel, "result files differ between the two runs");
    assert!(!serial.is_empty(), "experiments must write result files");

    let _ = fs::remove_dir_all(&dir);
}
