//! End-to-end persistent-store determinism, driven through the real
//! `latte-bench` binary so cold and warm runs are genuinely separate
//! processes (nothing in-process can leak between them):
//!
//! 1. A cold `--store` run computes and persists every simulation.
//! 2. A warm rerun computes **zero** simulations and writes
//!    byte-identical result CSVs.
//! 3. Corrupting a segment on disk costs exactly one quarantine and one
//!    recompute — never a wrong answer, never a nonzero exit.
//! 4. A `--inject-store` run (seeded, high rate) still exits 0 with
//!    byte-identical results.
//! 5. A `--store-verify` rerun re-simulates every hit, finds no
//!    divergence, and exits 0.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct Runs {
    work: PathBuf,
    store: PathBuf,
}

fn setup(tag: &str) -> Runs {
    let base = std::env::temp_dir().join(format!(
        "latte-bench-store-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&base);
    let work = base.join("work");
    let store = base.join("store");
    fs::create_dir_all(&work).expect("create work dir");
    Runs { work, store }
}

/// Runs the real binary in `work` and returns (exit code, stdout).
fn run_bench(runs: &Runs, extra: &[&str]) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_latte-bench"));
    cmd.current_dir(&runs.work)
        .arg("--store")
        .arg(&runs.store)
        .arg("--timings")
        .args(extra)
        .arg("fig1");
    let out = cmd.output().expect("spawn latte-bench");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Every results CSV as `name -> bytes`.
fn snapshot_results(runs: &Runs) -> BTreeMap<String, Vec<u8>> {
    let dir = runs.work.join("results");
    let mut map = BTreeMap::new();
    for entry in fs::read_dir(&dir).expect("results dir exists").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        map.insert(name, fs::read(entry.path()).expect("read result file"));
    }
    assert!(!map.is_empty(), "fig1 must write at least one results file");
    map
}

/// The `sim cache: ...` line of a `--timings` report.
fn sim_cache_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("sim cache:"))
        .unwrap_or_else(|| panic!("no sim cache line in:\n{stdout}"))
}

fn store_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("store:") && l.contains("quarantined"))
        .unwrap_or_else(|| panic!("no store line in:\n{stdout}"))
}

fn first_segment(store: &Path) -> PathBuf {
    fs::read_dir(store.join("segments"))
        .expect("segments dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "rec"))
        .expect("at least one segment")
}

#[test]
fn warm_store_replays_byte_identically_and_survives_corruption() {
    let runs = setup("e2e");

    // 1. Cold: everything computes, everything persists.
    let (code, stdout) = run_bench(&runs, &[]);
    assert_eq!(code, 0, "cold run failed:\n{stdout}");
    assert!(
        !sim_cache_line(&stdout).contains(" 0 computed"),
        "cold run must compute: {}",
        sim_cache_line(&stdout)
    );
    let cold = snapshot_results(&runs);

    // 2. Warm: a fresh process computes nothing and reproduces every
    //    byte from the store alone.
    let (code, stdout) = run_bench(&runs, &[]);
    assert_eq!(code, 0, "warm run failed:\n{stdout}");
    assert!(
        sim_cache_line(&stdout).contains(" 0 computed"),
        "warm run must compute nothing: {}",
        sim_cache_line(&stdout)
    );
    assert_eq!(snapshot_results(&runs), cold, "warm run must be byte-identical");

    // 3. Corruption: truncate one segment mid-record. The damaged entry
    //    is quarantined and recomputed; output is still byte-identical.
    let victim = first_segment(&runs.store);
    let bytes = fs::read(&victim).expect("read victim segment");
    fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate victim");
    let (code, stdout) = run_bench(&runs, &[]);
    assert_eq!(code, 0, "corrupted-store run failed:\n{stdout}");
    assert!(
        store_line(&stdout).contains("1 quarantined"),
        "exactly the damaged record is quarantined: {}",
        store_line(&stdout)
    );
    assert_eq!(
        snapshot_results(&runs),
        cold,
        "corruption may cost a recompute, never a different answer"
    );
    let quarantine = runs.store.join("quarantine");
    assert!(
        fs::read_dir(&quarantine).map(|d| d.count() > 0).unwrap_or(false),
        "quarantined record is preserved for inspection"
    );

    // 4. Seeded store fault injection: reads are being actively
    //    corrupted and the run still exits 0 with identical bytes.
    let (code, stdout) = run_bench(&runs, &["--inject-store", "0.5", "--seed", "7"]);
    assert_eq!(code, 0, "--inject-store run failed:\n{stdout}");
    assert_eq!(
        snapshot_results(&runs),
        cold,
        "fault injection must never change results"
    );

    // 5. Store-verify: every surviving record byte-matches a fresh
    //    recompute.
    let (code, stdout) = run_bench(&runs, &["--store-verify"]);
    assert_eq!(code, 0, "--store-verify run failed:\n{stdout}");
    assert_eq!(snapshot_results(&runs), cold);

    let _ = fs::remove_dir_all(runs.work.parent().expect("base dir"));
}

/// `sim_threads` is excluded from the simulation fingerprint, so store
/// records written by a serial process replay warm in a `--sim-threads`
/// process and vice versa — zero recomputes, byte-identical results in
/// both crossover directions.
#[test]
fn warm_store_hits_transfer_between_serial_and_sim_threads() {
    // Cold serial -> warm parallel.
    let runs = setup("simthreads-fwd");
    let (code, stdout) = run_bench(&runs, &[]);
    assert_eq!(code, 0, "cold serial run failed:\n{stdout}");
    let cold = snapshot_results(&runs);
    let (code, stdout) = run_bench(&runs, &["--sim-threads", "2"]);
    assert_eq!(code, 0, "warm --sim-threads 2 run failed:\n{stdout}");
    assert!(
        sim_cache_line(&stdout).contains(" 0 computed"),
        "serial store records must replay under --sim-threads: {}",
        sim_cache_line(&stdout)
    );
    assert_eq!(snapshot_results(&runs), cold, "forward crossover must be byte-identical");
    let _ = fs::remove_dir_all(runs.work.parent().expect("base dir"));

    // Cold parallel -> warm serial.
    let runs = setup("simthreads-rev");
    let (code, stdout) = run_bench(&runs, &["--sim-threads", "4"]);
    assert_eq!(code, 0, "cold --sim-threads 4 run failed:\n{stdout}");
    assert_eq!(
        snapshot_results(&runs),
        cold,
        "a parallel cold run must write the same bytes as a serial one"
    );
    let (code, stdout) = run_bench(&runs, &[]);
    assert_eq!(code, 0, "warm serial run failed:\n{stdout}");
    assert!(
        sim_cache_line(&stdout).contains(" 0 computed"),
        "parallel store records must replay serially: {}",
        sim_cache_line(&stdout)
    );
    assert_eq!(snapshot_results(&runs), cold, "reverse crossover must be byte-identical");
    let _ = fs::remove_dir_all(runs.work.parent().expect("base dir"));
}
