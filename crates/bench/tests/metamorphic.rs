//! Metamorphic relations over the simulator: properties that must hold
//! between *pairs* of runs whose configurations are known-equivalent or
//! known-ordered. Each test runs the simulator directly (no memo cache,
//! no process-global flags), so the relations hold for the simulator
//! itself, not for any replay layer above it.

use latte_bench::{run_benchmark_shadowed, PolicyKind};
use latte_core::{CompressionMode, LatteCc, LatteConfig};
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, Op, OpStream,
    ShadowViolationKind, UncompressedPolicy, VecStream,
};
use latte_gpusim::testing::StridedKernel;
use latte_workloads::BenchmarkSpec;

fn bench(abbr: &str) -> BenchmarkSpec {
    latte_workloads::benchmark(abbr).unwrap_or_else(|| panic!("{abbr} exists"))
}

fn small_machine() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        ..GpuConfig::small()
    }
}

/// Runs every kernel of `bench` on `config` under policies built by
/// `make_policy`, returning per-kernel statistics.
fn run_all(
    config: &GpuConfig,
    bench: &BenchmarkSpec,
    make_policy: impl FnMut(usize) -> Box<dyn L1CompressionPolicy>,
) -> Vec<KernelStats> {
    let mut gpu = Gpu::new(config, make_policy);
    bench
        .build_kernels()
        .iter()
        .map(|k| gpu.run_kernel(k as &dyn Kernel))
        .collect()
}

/// An injector whose every rate is zero must be observationally identical
/// to no injector at all: zero-rate sites consume no random numbers.
#[test]
fn zero_fault_rates_equal_faults_disabled() {
    for abbr in ["NW", "BFS"] {
        let bench = bench(abbr);
        let disabled = small_machine();
        let zeroed = GpuConfig {
            faults: Some(FaultConfig {
                seed: 7,
                ..FaultConfig::default()
            }),
            ..small_machine()
        };
        let a = run_all(&disabled, &bench, |_| Box::new(UncompressedPolicy));
        let b = run_all(&zeroed, &bench, |_| Box::new(UncompressedPolicy));
        assert_eq!(a, b, "{abbr}: zero-rate faults must be a no-op");

        let a = run_all(&disabled, &bench, |_| {
            PolicyKind::StaticBdi.build(&disabled)
        });
        let b = run_all(&zeroed, &bench, |_| PolicyKind::StaticBdi.build(&zeroed));
        assert_eq!(a, b, "{abbr}: zero-rate faults must be a no-op under compression");
    }
}

/// Making decompression free can only help — *when the memory access
/// order cannot depend on latency*. With one warp on one SM the address
/// stream is program order regardless of timing, so hits and misses are
/// identical and every saved decompression cycle comes straight off the
/// critical path: strictly fewer cycles, same cache behaviour.
///
/// (The naive multi-warp version of this relation is false: on NW the
/// zero-latency run is ~15% *slower*, a genuine scheduling anomaly —
/// faster hits let the greedy warp race ahead and thrash the shared L1,
/// raising the miss count. The relation only holds pointwise per access
/// stream, which is what this test pins.)
#[test]
fn free_decompression_strictly_helps_when_order_is_fixed() {
    let kernel = StridedKernel::new(1, 2048, 64);
    let paid = GpuConfig {
        num_sms: 1,
        ..GpuConfig::small()
    };
    let free = GpuConfig {
        zero_decompression_latency: true,
        ..paid.clone()
    };
    let run = |config: &GpuConfig| {
        let mut gpu = Gpu::new(config, |_| PolicyKind::StaticBdi.build(config));
        gpu.run_kernel(&kernel)
    };
    let paid_stats = run(&paid);
    let free_stats = run(&free);
    assert!(
        paid_stats.decompressions.total() > 0,
        "relation is vacuous without decompressions"
    );
    assert_eq!(paid_stats.l1, free_stats.l1, "access order must be latency-invariant");
    assert_eq!(paid_stats.decompressions, free_stats.decompressions);
    assert!(
        free_stats.cycles < paid_stats.cycles,
        "zero-latency decompression must beat paid ({} >= {})",
        free_stats.cycles,
        paid_stats.cycles
    );
}

/// On the real benchmark suite the cycle count may legitimately move
/// either way (see above), but the flag's accounting contract is exact:
/// a `zero_decompression_latency` run still *counts* decompressions yet
/// charges no queueing wait for them.
#[test]
fn free_decompression_charges_no_queue_wait_on_benchmarks() {
    let mut suite_decompressions = 0u64;
    for abbr in ["BFS", "KM", "NW", "SS"] {
        let bench = bench(abbr);
        let free = GpuConfig {
            zero_decompression_latency: true,
            ..small_machine()
        };
        let total = run_all(&free, &bench, |_| PolicyKind::StaticBdi.build(&free))
            .iter()
            .fold(KernelStats::default(), |mut acc, s| {
                acc.accumulate(s);
                acc
            });
        // Not every benchmark decompresses (KM's float lines are
        // BDI-incompressible on this geometry), so non-vacuity is
        // asserted over the suite, not per benchmark.
        suite_decompressions += total.decompressions.total();
        assert_eq!(
            total.decompression_queue_wait, 0,
            "{abbr}: free decompression must not charge queue wait"
        );
    }
    assert!(
        suite_decompressions > 0,
        "suite saw no decompressions at all — the contract check is vacuous"
    );
}

/// LATTE-CC pinned to the Uncompressed mode with no dedicated sampling
/// sets must be statistics-identical to the uncompressed baseline: the
/// controller machinery may observe, but with every decision forced to
/// "don't compress" it must not perturb the simulation.
#[test]
fn latte_cc_forced_uncompressed_matches_baseline() {
    for abbr in ["NW", "BFS", "KM"] {
        let bench = bench(abbr);
        let config = small_machine();
        let baseline = run_all(&config, &bench, |_| Box::new(UncompressedPolicy));
        let forced = run_all(&config, &bench, |_| {
            Box::new(LatteCc::new(LatteConfig {
                num_l1_sets: config.l1_geometry.num_sets(),
                l1_base_hit_latency: config.l1_hit_latency as f64,
                force_mode: Some(CompressionMode::None),
                dedicated_sets_per_mode: 0,
                ..LatteConfig::paper()
            }))
        });
        assert_eq!(
            baseline, forced,
            "{abbr}: forced-Uncompressed LATTE-CC diverged from Baseline"
        );
    }
}

/// The oracle must catch the planted mutation: with bit flips injected
/// and the decode-failure recovery path disabled, corrupted bytes reach
/// the warps and every such load must be flagged with its line address
/// and cycle. The same injection with recovery enabled is the control:
/// zero violations.
#[test]
fn oracle_flags_unrecovered_corruption_and_passes_recovered_runs() {
    let bench = bench("BFS");
    let mutated = GpuConfig {
        num_sms: 2,
        faults: Some(FaultConfig {
            disable_recovery: true,
            ..FaultConfig::bitflips(42, 0.02)
        }),
        ..GpuConfig::small()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &mutated);
    assert!(
        result.stats.faults.bitflips_detected > 0,
        "mutation run must actually detect (and consume) flips"
    );
    assert!(
        report.violations_total > 0,
        "recovery disabled under injection but the oracle saw nothing"
    );
    for v in &report.violations {
        assert_eq!(v.kind, ShadowViolationKind::DataIntegrity);
        assert!(v.addr.is_some(), "violation must name the line: {v}");
        assert!(v.cycle > 0, "violation must name the cycle: {v}");
    }

    let recovered = GpuConfig {
        num_sms: 2,
        faults: Some(FaultConfig::bitflips(42, 0.02)),
        ..GpuConfig::small()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &recovered);
    assert!(result.stats.faults.bitflips_detected > 0);
    assert_eq!(
        report.violations_total, 0,
        "recovery enabled: detect-and-refetch must keep corrupted bytes from the warps: {:?}",
        report.violations
    );
}

/// The write-back data path is invisible to store-free workloads: with
/// no store ever issued, no line is ever dirtied, so `write_back: true`
/// must be byte-identical to the default write-through run — every
/// counter of every kernel, under the baseline and under compression.
/// (The default harness stays write-through, so the golden fig1
/// snapshots are doubly safe; this relation pins that even opting in to
/// write-back cannot move load-only results.)
#[test]
fn write_back_is_identity_on_store_free_workloads() {
    for abbr in ["BFS", "KM"] {
        let bench = bench(abbr);
        let through = small_machine();
        let back = GpuConfig {
            write_back: true,
            ..small_machine()
        };
        for policy in [PolicyKind::Baseline, PolicyKind::StaticBdi, PolicyKind::LatteCc] {
            let a = run_all(&through, &bench, |_| policy.build(&through));
            let b = run_all(&back, &bench, |_| policy.build(&back));
            let stores: u64 = a.iter().map(|s| s.stores).sum();
            assert_eq!(stores, 0, "{abbr} must be store-free for this relation");
            assert_eq!(
                a, b,
                "{abbr}/{policy:?}: write-back changed a store-free workload"
            );
        }
    }
}

/// A kernel that walks a working set larger than the L1, re-writing the
/// exact bytes every line already holds (all-silent stores). `line_data`
/// must match `warp_program`'s store payloads for the stores to be
/// silent.
struct SilentStoreKernel;

impl Kernel for SilentStoreKernel {
    fn name(&self) -> &str {
        "silent-store-test"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        // One warp per SM: the access stream is program order regardless
        // of timing, so the two runs compare the same address sequence.
        1
    }

    fn warp_program(&self, sm: usize, _warp: usize) -> Box<dyn OpStream> {
        let line = |i: u64| ((sm as u64) << 20 | i) * 128;
        let mut ops = Vec::new();
        for i in 0..600u64 {
            let addr = line((i * 13) % 512);
            if i % 2 == 0 {
                let sector = i % 4;
                let bytes = self.line_data(latte_cache::LineAddr::from_byte_addr(addr));
                let mut data = [0u8; 32];
                data.copy_from_slice(
                    &bytes.as_bytes()[(sector * 32) as usize..(sector * 32 + 32) as usize],
                );
                ops.push(Op::Store {
                    addr: addr + sector * 32,
                    data,
                });
            } else {
                ops.push(Op::Load { addr });
            }
        }
        ops.push(Op::Exit);
        Box::new(VecStream::new(ops))
    }

    fn line_data(&self, addr: latte_cache::LineAddr) -> latte_compress::CacheLine {
        let words: Vec<u32> = (0..32)
            .map(|i| (addr.line_number() as u32).wrapping_mul(31).wrapping_add(i))
            .collect();
        latte_compress::CacheLine::from_u32_words(&words)
    }
}

/// All-silent stores must not change cache behaviour: rewriting the
/// bytes a line already holds re-compresses to the same footprint, so a
/// write-back run's L1 hit/miss/eviction counters must equal the
/// write-through run's (write-allocate in both, so store misses fill
/// identically). Only the dirty bookkeeping — write-back traffic — may
/// differ.
#[test]
fn silent_stores_do_not_change_miss_or_eviction_counters() {
    let through = GpuConfig {
        num_sms: 2,
        write_allocate: true,
        ..GpuConfig::small()
    };
    let back = GpuConfig {
        write_back: true,
        ..through.clone()
    };
    for policy in [PolicyKind::Baseline, PolicyKind::StaticBdi] {
        let run = |config: &GpuConfig| {
            let mut gpu = Gpu::new(config, |_| policy.build(config));
            gpu.run_kernel(&SilentStoreKernel)
        };
        let wt = run(&through);
        let wb = run(&back);
        assert!(wt.stores > 0, "relation is vacuous without stores");
        assert!(wt.l1.evictions > 0, "working set must overflow the L1");
        assert!(
            wb.writebacks > 0,
            "silent stores still dirty lines: write-backs must flow"
        );
        assert_eq!(
            wt.l1, wb.l1,
            "{policy:?}: silent stores changed hit/miss/eviction counters"
        );
    }
}

/// Shadow-checking is observation, not interference: a shadow-checked
/// run's statistics must be identical to the plain run's.
#[test]
fn shadow_check_does_not_perturb_results() {
    for abbr in ["NW", "BFS"] {
        let bench = bench(abbr);
        let config = small_machine();
        for policy in [PolicyKind::Baseline, PolicyKind::StaticSc, PolicyKind::LatteCc] {
            let plain = run_all(&config, &bench, |_| policy.build(&config));
            let plain: KernelStats = plain.iter().fold(KernelStats::default(), |mut acc, s| {
                acc.accumulate(s);
                acc
            });
            let (shadowed, report) = run_benchmark_shadowed(policy, &bench, &config);
            assert!(report.loads_checked > 0, "{abbr}/{policy:?}: hook not wired");
            assert_eq!(report.violations_total, 0, "{abbr}/{policy:?} diverged");
            assert_eq!(
                plain, shadowed.stats,
                "{abbr}/{policy:?}: the shadow check changed the simulation"
            );
        }
    }
}
