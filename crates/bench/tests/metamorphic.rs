//! Metamorphic relations over the simulator: properties that must hold
//! between *pairs* of runs whose configurations are known-equivalent or
//! known-ordered. Each test runs the simulator directly (no memo cache,
//! no process-global flags), so the relations hold for the simulator
//! itself, not for any replay layer above it.

use latte_bench::{run_benchmark_shadowed, PolicyKind};
use latte_core::{CompressionMode, LatteCc, LatteConfig};
use latte_gpusim::{
    FaultConfig, Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, ShadowViolationKind,
    UncompressedPolicy,
};
use latte_gpusim::testing::StridedKernel;
use latte_workloads::BenchmarkSpec;

fn bench(abbr: &str) -> BenchmarkSpec {
    latte_workloads::benchmark(abbr).unwrap_or_else(|| panic!("{abbr} exists"))
}

fn small_machine() -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        ..GpuConfig::small()
    }
}

/// Runs every kernel of `bench` on `config` under policies built by
/// `make_policy`, returning per-kernel statistics.
fn run_all(
    config: &GpuConfig,
    bench: &BenchmarkSpec,
    make_policy: impl FnMut(usize) -> Box<dyn L1CompressionPolicy>,
) -> Vec<KernelStats> {
    let mut gpu = Gpu::new(config, make_policy);
    bench
        .build_kernels()
        .iter()
        .map(|k| gpu.run_kernel(k as &dyn Kernel))
        .collect()
}

/// An injector whose every rate is zero must be observationally identical
/// to no injector at all: zero-rate sites consume no random numbers.
#[test]
fn zero_fault_rates_equal_faults_disabled() {
    for abbr in ["NW", "BFS"] {
        let bench = bench(abbr);
        let disabled = small_machine();
        let zeroed = GpuConfig {
            faults: Some(FaultConfig {
                seed: 7,
                ..FaultConfig::default()
            }),
            ..small_machine()
        };
        let a = run_all(&disabled, &bench, |_| Box::new(UncompressedPolicy));
        let b = run_all(&zeroed, &bench, |_| Box::new(UncompressedPolicy));
        assert_eq!(a, b, "{abbr}: zero-rate faults must be a no-op");

        let a = run_all(&disabled, &bench, |_| {
            PolicyKind::StaticBdi.build(&disabled)
        });
        let b = run_all(&zeroed, &bench, |_| PolicyKind::StaticBdi.build(&zeroed));
        assert_eq!(a, b, "{abbr}: zero-rate faults must be a no-op under compression");
    }
}

/// Making decompression free can only help — *when the memory access
/// order cannot depend on latency*. With one warp on one SM the address
/// stream is program order regardless of timing, so hits and misses are
/// identical and every saved decompression cycle comes straight off the
/// critical path: strictly fewer cycles, same cache behaviour.
///
/// (The naive multi-warp version of this relation is false: on NW the
/// zero-latency run is ~15% *slower*, a genuine scheduling anomaly —
/// faster hits let the greedy warp race ahead and thrash the shared L1,
/// raising the miss count. The relation only holds pointwise per access
/// stream, which is what this test pins.)
#[test]
fn free_decompression_strictly_helps_when_order_is_fixed() {
    let kernel = StridedKernel::new(1, 2048, 64);
    let paid = GpuConfig {
        num_sms: 1,
        ..GpuConfig::small()
    };
    let free = GpuConfig {
        zero_decompression_latency: true,
        ..paid.clone()
    };
    let run = |config: &GpuConfig| {
        let mut gpu = Gpu::new(config, |_| PolicyKind::StaticBdi.build(config));
        gpu.run_kernel(&kernel)
    };
    let paid_stats = run(&paid);
    let free_stats = run(&free);
    assert!(
        paid_stats.decompressions.total() > 0,
        "relation is vacuous without decompressions"
    );
    assert_eq!(paid_stats.l1, free_stats.l1, "access order must be latency-invariant");
    assert_eq!(paid_stats.decompressions, free_stats.decompressions);
    assert!(
        free_stats.cycles < paid_stats.cycles,
        "zero-latency decompression must beat paid ({} >= {})",
        free_stats.cycles,
        paid_stats.cycles
    );
}

/// On the real benchmark suite the cycle count may legitimately move
/// either way (see above), but the flag's accounting contract is exact:
/// a `zero_decompression_latency` run still *counts* decompressions yet
/// charges no queueing wait for them.
#[test]
fn free_decompression_charges_no_queue_wait_on_benchmarks() {
    let mut suite_decompressions = 0u64;
    for abbr in ["BFS", "KM", "NW", "SS"] {
        let bench = bench(abbr);
        let free = GpuConfig {
            zero_decompression_latency: true,
            ..small_machine()
        };
        let total = run_all(&free, &bench, |_| PolicyKind::StaticBdi.build(&free))
            .iter()
            .fold(KernelStats::default(), |mut acc, s| {
                acc.accumulate(s);
                acc
            });
        // Not every benchmark decompresses (KM's float lines are
        // BDI-incompressible on this geometry), so non-vacuity is
        // asserted over the suite, not per benchmark.
        suite_decompressions += total.decompressions.total();
        assert_eq!(
            total.decompression_queue_wait, 0,
            "{abbr}: free decompression must not charge queue wait"
        );
    }
    assert!(
        suite_decompressions > 0,
        "suite saw no decompressions at all — the contract check is vacuous"
    );
}

/// LATTE-CC pinned to the Uncompressed mode with no dedicated sampling
/// sets must be statistics-identical to the uncompressed baseline: the
/// controller machinery may observe, but with every decision forced to
/// "don't compress" it must not perturb the simulation.
#[test]
fn latte_cc_forced_uncompressed_matches_baseline() {
    for abbr in ["NW", "BFS", "KM"] {
        let bench = bench(abbr);
        let config = small_machine();
        let baseline = run_all(&config, &bench, |_| Box::new(UncompressedPolicy));
        let forced = run_all(&config, &bench, |_| {
            Box::new(LatteCc::new(LatteConfig {
                num_l1_sets: config.l1_geometry.num_sets(),
                l1_base_hit_latency: config.l1_hit_latency as f64,
                force_mode: Some(CompressionMode::None),
                dedicated_sets_per_mode: 0,
                ..LatteConfig::paper()
            }))
        });
        assert_eq!(
            baseline, forced,
            "{abbr}: forced-Uncompressed LATTE-CC diverged from Baseline"
        );
    }
}

/// The oracle must catch the planted mutation: with bit flips injected
/// and the decode-failure recovery path disabled, corrupted bytes reach
/// the warps and every such load must be flagged with its line address
/// and cycle. The same injection with recovery enabled is the control:
/// zero violations.
#[test]
fn oracle_flags_unrecovered_corruption_and_passes_recovered_runs() {
    let bench = bench("BFS");
    let mutated = GpuConfig {
        num_sms: 2,
        faults: Some(FaultConfig {
            disable_recovery: true,
            ..FaultConfig::bitflips(42, 0.02)
        }),
        ..GpuConfig::small()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &mutated);
    assert!(
        result.stats.faults.bitflips_detected > 0,
        "mutation run must actually detect (and consume) flips"
    );
    assert!(
        report.violations_total > 0,
        "recovery disabled under injection but the oracle saw nothing"
    );
    for v in &report.violations {
        assert_eq!(v.kind, ShadowViolationKind::DataIntegrity);
        assert!(v.addr.is_some(), "violation must name the line: {v}");
        assert!(v.cycle > 0, "violation must name the cycle: {v}");
    }

    let recovered = GpuConfig {
        num_sms: 2,
        faults: Some(FaultConfig::bitflips(42, 0.02)),
        ..GpuConfig::small()
    };
    let (result, report) = run_benchmark_shadowed(PolicyKind::StaticBdi, &bench, &recovered);
    assert!(result.stats.faults.bitflips_detected > 0);
    assert_eq!(
        report.violations_total, 0,
        "recovery enabled: detect-and-refetch must keep corrupted bytes from the warps: {:?}",
        report.violations
    );
}

/// Shadow-checking is observation, not interference: a shadow-checked
/// run's statistics must be identical to the plain run's.
#[test]
fn shadow_check_does_not_perturb_results() {
    for abbr in ["NW", "BFS"] {
        let bench = bench(abbr);
        let config = small_machine();
        for policy in [PolicyKind::Baseline, PolicyKind::StaticSc, PolicyKind::LatteCc] {
            let plain = run_all(&config, &bench, |_| policy.build(&config));
            let plain: KernelStats = plain.iter().fold(KernelStats::default(), |mut acc, s| {
                acc.accumulate(s);
                acc
            });
            let (shadowed, report) = run_benchmark_shadowed(policy, &bench, &config);
            assert!(report.loads_checked > 0, "{abbr}/{policy:?}: hook not wired");
            assert_eq!(report.violations_total, 0, "{abbr}/{policy:?} diverged");
            assert_eq!(
                plain, shadowed.stats,
                "{abbr}/{policy:?}: the shadow check changed the simulation"
            );
        }
    }
}
