//! The parallel experiment driver's determinism contract: `--jobs N`
//! must produce byte-identical `results/` files *and* per-experiment
//! output to `--jobs 1`, a warm simulation memo cache must be
//! indistinguishable from a cold one (same bytes, zero recomputation),
//! and a failing experiment must never prevent the rest of the batch
//! from running.

use latte_bench::experiments::{self as exp, set_results_dir};
use latte_bench::{run_experiments, run_experiments_with_outcomes, sim, Experiment};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A cheap experiment subset (a few seconds total) that still exercises
/// real simulations and CSV writes.
const CHEAP: &[Experiment] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
    ("table2", "simulated GPU configuration", exp::table2::run),
];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("latte-determinism-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

/// Reads every regular file in `dir` into a name -> bytes map.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read result file"));
    }
    files
}

/// One test (not several) because the results-dir override and the
/// simulation memo cache are process-global and libtest runs sibling
/// tests concurrently.
///
/// The first (serial) run starts from a cold cache; the second
/// (parallel) run hits the warm cache for every simulation. Requiring
/// the two runs to match byte for byte therefore checks both contracts
/// at once: `--jobs N` vs `--jobs 1`, and warm vs cold cache — for the
/// `results/` CSVs *and* for each experiment's captured output,
/// including diagnostic lines replayed out of the cache.
#[test]
fn parallel_warm_cache_run_is_byte_identical_to_serial_cold_run() {
    let selected: Vec<&Experiment> = CHEAP.iter().collect();
    let outputs = |outcomes: Vec<latte_bench::ExperimentOutcome>| {
        outcomes
            .into_iter()
            .map(|o| {
                assert!(o.result.is_ok(), "{} must succeed", o.name);
                (o.name, o.output)
            })
            .collect::<BTreeMap<_, _>>()
    };

    // One directory for both runs (the captured output embeds the CSV
    // paths, so they must match): snapshot between runs, the second run
    // atomically overwrites the first's files.
    let dir = fresh_dir("runs");
    set_results_dir(Some(dir.clone()));
    let computed_before = sim::stats().computed;
    let (failed, serial_outcomes) = run_experiments_with_outcomes(&selected, 1);
    assert_eq!(failed, 0, "serial run must succeed");
    let computed_cold = sim::stats().computed;
    assert!(
        computed_cold > computed_before,
        "the cheap subset must run real simulations"
    );
    let serial = snapshot(&dir);

    let (failed, parallel_outcomes) = run_experiments_with_outcomes(&selected, 4);
    set_results_dir(None);
    assert_eq!(failed, 0, "parallel run must succeed");
    let parallel = snapshot(&dir);
    let computed_warm = sim::stats().computed;
    assert_eq!(
        computed_warm, computed_cold,
        "a warm-cache re-run must not recompute any simulation"
    );
    sim::verify_each_sim_ran_once().expect("one compute per unique simulation");

    let serial_out = outputs(serial_outcomes);
    let parallel_out = outputs(parallel_outcomes);
    assert!(
        serial_out.values().any(|o| !o.is_empty()),
        "experiments must capture output"
    );
    assert_eq!(
        serial_out, parallel_out,
        "captured experiment output differs between serial-cold and parallel-warm runs"
    );

    assert!(!serial.is_empty(), "experiments must write result files");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same set of result files"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = fs::remove_dir_all(&dir);
}

fn ok_exp() -> io::Result<()> {
    Ok(())
}

fn err_exp() -> io::Result<()> {
    Err(io::Error::other("synthetic failure"))
}

/// Property: for every job count and every single-failure position, the
/// driver reports exactly one failure and still runs the whole batch
/// (enumerated exhaustively — no randomness, so no flaky shrinking).
#[test]
fn driver_completes_batch_for_all_failure_positions_and_job_counts() {
    const N: usize = 6;
    static TEMPLATES: [Experiment; 2] = [("ok", "", ok_exp), ("err", "", err_exp)];
    for jobs in 1..=8 {
        for fail_at in 0..N {
            let batch: Vec<&Experiment> = (0..N)
                .map(|i| &TEMPLATES[usize::from(i == fail_at)])
                .collect();
            let failed = run_experiments(&batch, jobs);
            assert_eq!(failed, 1, "jobs={jobs} fail_at={fail_at}");
        }
    }
}
