//! The parallel experiment driver's determinism contract: `--jobs N`
//! must produce byte-identical `results/` files to `--jobs 1`, and a
//! failing experiment must never prevent the rest of the batch from
//! running.

use latte_bench::experiments::{self as exp, set_results_dir};
use latte_bench::{run_experiments, Experiment};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A cheap experiment subset (a few seconds total) that still exercises
/// real simulations and CSV writes.
const CHEAP: &[Experiment] = &[
    ("fig1", "L1 hit-latency sensitivity sweep", exp::fig01::run),
    ("table1", "compression algorithm comparison", exp::table1::run),
    ("table2", "simulated GPU configuration", exp::table2::run),
];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("latte-determinism-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

/// Reads every regular file in `dir` into a name -> bytes map.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read result file"));
    }
    files
}

/// One test (not several) because the results-dir override is
/// process-global and libtest runs sibling tests concurrently.
#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let selected: Vec<&Experiment> = CHEAP.iter().collect();

    let serial_dir = fresh_dir("serial");
    set_results_dir(Some(serial_dir.clone()));
    let failed = run_experiments(&selected, 1);
    assert_eq!(failed, 0, "serial run must succeed");

    let parallel_dir = fresh_dir("parallel");
    set_results_dir(Some(parallel_dir.clone()));
    let failed = run_experiments(&selected, 4);
    set_results_dir(None);
    assert_eq!(failed, 0, "parallel run must succeed");

    let serial = snapshot(&serial_dir);
    let parallel = snapshot(&parallel_dir);
    assert!(!serial.is_empty(), "experiments must write result files");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same set of result files"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let _ = fs::remove_dir_all(&serial_dir);
    let _ = fs::remove_dir_all(&parallel_dir);
}

fn ok_exp() -> io::Result<()> {
    Ok(())
}

fn err_exp() -> io::Result<()> {
    Err(io::Error::other("synthetic failure"))
}

/// Property: for every job count and every single-failure position, the
/// driver reports exactly one failure and still runs the whole batch
/// (enumerated exhaustively — no randomness, so no flaky shrinking).
#[test]
fn driver_completes_batch_for_all_failure_positions_and_job_counts() {
    const N: usize = 6;
    static TEMPLATES: [Experiment; 2] = [("ok", "", ok_exp), ("err", "", err_exp)];
    for jobs in 1..=8 {
        for fail_at in 0..N {
            let batch: Vec<&Experiment> = (0..N)
                .map(|i| &TEMPLATES[usize::from(i == fail_at)])
                .collect();
            let failed = run_experiments(&batch, jobs);
            assert_eq!(failed, 1, "jobs={jobs} fail_at={fail_at}");
        }
    }
}
