//! Serial vs `--sim-threads N` byte-identity, driven through the real
//! `latte-bench` binary so every run is a genuinely separate process
//! (the sim-threads setting, fault injection and the shadow flag are
//! all process-global). The epoch-barrier scheduler's whole contract is
//! that `--sim-threads N` is an *invisible* optimisation: every results
//! file must match the serial run byte for byte — under clean runs,
//! under the differential oracle, and under every fault-injection
//! family, including runs that end in the deadlock watchdog.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fresh_work(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "latte-bench-simthreads-det-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create work dir");
    dir
}

/// Runs the real binary on fig1 in its own work dir; returns
/// (exit code, results files as `name -> bytes`).
fn run_bench(tag: &str, extra: &[&str]) -> (i32, BTreeMap<String, Vec<u8>>) {
    let work = fresh_work(tag);
    let out = Command::new(env!("CARGO_BIN_EXE_latte-bench"))
        .current_dir(&work)
        .args(extra)
        .arg("fig1")
        .output()
        .expect("spawn latte-bench");
    let code = out.status.code().unwrap_or(-1);
    let mut files = BTreeMap::new();
    if let Ok(entries) = fs::read_dir(work.join("results")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            files.insert(name, fs::read(entry.path()).expect("read result file"));
        }
    }
    let _ = fs::remove_dir_all(&work);
    (code, files)
}

/// Clean runs: `--sim-threads {2, 4}` write byte-identical results to
/// the serial default (4 also exercises the shard-count clamp — the
/// cheap config has fewer SMs than that on some experiments).
#[test]
fn clean_runs_are_byte_identical_across_sim_threads() {
    let (code, serial) = run_bench("clean-serial", &[]);
    assert_eq!(code, 0, "serial run failed");
    assert!(!serial.is_empty(), "fig1 must write result files");
    for threads in ["2", "4"] {
        let (code, parallel) = run_bench(
            &format!("clean-t{threads}"),
            &["--sim-threads", threads],
        );
        assert_eq!(code, 0, "--sim-threads {threads} run failed");
        assert_eq!(
            parallel, serial,
            "--sim-threads {threads} results differ from serial"
        );
    }
}

/// The differential oracle sees the same loads, fills and checkpoints
/// in the same order under the epoch barrier: a shadow-checked
/// `--sim-threads 2` run passes and matches the serial shadow-checked
/// run byte for byte.
#[test]
fn shadow_checked_runs_are_byte_identical_across_sim_threads() {
    let (code, serial) = run_bench("shadow-serial", &["--shadow-check"]);
    assert_eq!(code, 0, "serial shadow-checked run failed");
    let (code, parallel) =
        run_bench("shadow-t2", &["--shadow-check", "--sim-threads", "2"]);
    assert_eq!(code, 0, "parallel shadow-checked run must verify clean");
    assert_eq!(parallel, serial, "shadow-checked results differ");
}

/// Fault injection is seeded per (SM, stream position); the arbiter
/// must deliver the exact same fault sequence regardless of sharding.
/// Covers the L1-hit bit-flip, fill bit-flip and recovery-disabled
/// families in one run each.
#[test]
fn fault_injected_runs_are_byte_identical_across_sim_threads() {
    let inject: &[&str] = &["--inject", "1e-3", "--inject-fill", "1e-3", "--seed", "9"];
    let (code_s, serial) = run_bench("inject-serial", inject);
    let args_t: Vec<&str> = inject.iter().copied().chain(["--sim-threads", "2"]).collect();
    let (code_t, parallel) = run_bench("inject-t2", &args_t);
    assert_eq!(code_t, code_s, "exit codes differ under injection");
    assert_eq!(parallel, serial, "fault-injected results differ");

    let no_rec: &[&str] = &["--inject", "1e-3", "--seed", "9", "--no-fault-recovery"];
    let (code_s, serial) = run_bench("norec-serial", no_rec);
    let args_t: Vec<&str> = no_rec.iter().copied().chain(["--sim-threads", "4"]).collect();
    let (code_t, parallel) = run_bench("norec-t4", &args_t);
    assert_eq!(code_t, code_s, "exit codes differ with recovery disabled");
    assert_eq!(parallel, serial, "recovery-disabled results differ");
}

/// Wakeup drops park warps forever and trip the deadlock watchdog; the
/// coordinator's deadlock cycle formula must agree with the serial
/// loop's, so even these abnormal terminations are byte-identical.
#[test]
fn deadlocked_runs_are_byte_identical_across_sim_threads() {
    let drops: &[&str] = &["--inject-wakeup-drop", "0.05", "--seed", "3"];
    let (code_s, serial) = run_bench("drop-serial", drops);
    let args_t: Vec<&str> = drops.iter().copied().chain(["--sim-threads", "2"]).collect();
    let (code_t, parallel) = run_bench("drop-t2", &args_t);
    assert_eq!(code_t, code_s, "exit codes differ under wakeup drops");
    assert_eq!(parallel, serial, "deadlock-terminated results differ");
}
