//! Golden-snapshot test: the Fig 1 experiment's CSV must match the
//! committed snapshot byte for byte. Fig 1 is the cheapest experiment
//! that runs real simulations (Baseline policy only), so any drift in
//! the simulator core, the policy plumbing or the CSV writer shows up
//! here as a diff against a file a reviewer can read.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p latte-bench --test golden
//! ```
//!
//! Its own test binary: the results-dir override and the simulation
//! memo cache are process-global.

use latte_bench::experiments::{self as exp, set_results_dir};
use std::fs;
use std::path::{Path, PathBuf};

const CSV_NAME: &str = "fig01_hit_latency_sensitivity.csv";

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(CSV_NAME)
}

/// Writes `bytes` to `path` atomically (temp file + rename), matching
/// the discipline of the experiment CSV writer itself.
fn bless(path: &Path, bytes: &[u8]) {
    let dir = path.parent().expect("golden file has a parent");
    fs::create_dir_all(dir).expect("create golden dir");
    let tmp = dir.join(format!(".{CSV_NAME}.tmp"));
    fs::write(&tmp, bytes).expect("write temp golden");
    fs::rename(&tmp, path).expect("rename golden into place");
}

#[test]
fn fig01_csv_matches_committed_golden() {
    let dir = std::env::temp_dir().join(format!("latte-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    set_results_dir(Some(dir.clone()));
    let result = exp::fig01::run();
    set_results_dir(None);
    result.expect("fig1 must succeed");

    let actual = fs::read(dir.join(CSV_NAME)).expect("fig1 must write its CSV");
    let _ = fs::remove_dir_all(&dir);

    let golden = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        bless(&golden, &actual);
        return;
    }
    let expected = fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); bless it with \
             UPDATE_GOLDEN=1 cargo test -p latte-bench --test golden",
            golden.display()
        )
    });
    assert_eq!(
        String::from_utf8_lossy(&actual),
        String::from_utf8_lossy(&expected),
        "fig1 CSV drifted from the committed golden snapshot; if the \
         change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}
