//! Property tests for the LATTE-CC controller machinery: no event
//! sequence may panic, corrupt counters, or produce out-of-range
//! decisions.

use latte_compress::{CacheLine, CompressionAlgo};
use latte_core::{
    amat_gpu, AdaptiveCmp, AdaptiveHitCount, CompressionMode, LatteCc, LatteConfig, ModeSample,
    SamplingController, ScManager,
};
use latte_gpusim::{AccessEvent, EpProbe, L1CompressionPolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    Access { set: usize, hit: bool },
    Fill { set: usize, word: u32 },
    Ep { avail: f64, run_len: f64 },
    KernelBoundary,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        5 => (0usize..32, any::<bool>()).prop_map(|(set, hit)| Event::Access { set, hit }),
        5 => (0usize..32, any::<u32>()).prop_map(|(set, word)| Event::Fill { set, word }),
        2 => (0.0f64..48.0, 0.5f64..8.0).prop_map(|(avail, run_len)| Event::Ep { avail, run_len }),
        1 => Just(Event::KernelBoundary),
    ]
}

fn drive(policy: &mut dyn L1CompressionPolicy, events: &[Event]) {
    let mut cycle = 0;
    for ev in events {
        cycle += 7;
        match ev {
            Event::Access { set, hit } => policy.on_access(&AccessEvent {
                set: *set,
                hit: *hit,
                algo: CompressionAlgo::None,
                cycle,
            }),
            Event::Fill { set, word } => {
                let line = CacheLine::from_u32_words(&[*word; 32]);
                let (algo, compression) = policy.compress_fill(*set, &line);
                // Fill results are always well-formed.
                assert!(compression.size_bytes() <= CacheLine::SIZE_BYTES);
                if !compression.is_compressed() {
                    // An uncompressed result may carry any attempted algo
                    // tag; the cache downgrades it. Just exercise it.
                    let _ = algo;
                }
            }
            Event::Ep { avail, run_len } => policy.on_ep(&EpProbe {
                avg_warps_available: *avail,
                avg_exec_cycles_per_schedule: *run_len,
                l1_accesses: 256,
                cycles: 1000,
                end_cycle: cycle,
                ep_index: 0,
            }),
            Event::KernelBoundary => {
                policy.on_kernel_end();
                policy.on_kernel_start();
            }
        }
        // Invalidation requests must always name a real algorithm.
        if let Some(algo) = policy.pending_invalidation() {
            assert_ne!(algo, CompressionAlgo::None);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn latte_survives_any_event_sequence(events in prop::collection::vec(event_strategy(), 1..300)) {
        let mut latte = LatteCc::new(LatteConfig::paper());
        drive(&mut latte, &events);
        // The decision is always one of the three modes and the histogram
        // is consistent with the number of EP events since kernel start.
        let report = latte.report();
        prop_assert!(report.total_eps() <= events.len() as u64);
        prop_assert!(latte.latency_tolerance() >= 0.0);
    }

    #[test]
    fn adaptive_baselines_survive_any_event_sequence(
        events in prop::collection::vec(event_strategy(), 1..200)
    ) {
        let mut ahc = AdaptiveHitCount::new(LatteConfig::paper());
        drive(&mut ahc, &events);
        let mut acmp = AdaptiveCmp::new(LatteConfig::paper());
        drive(&mut acmp, &events);
    }

    #[test]
    fn sampling_controller_counters_are_bounded(
        ops in prop::collection::vec((0usize..32, any::<bool>()), 1..500),
        period in 2u64..16,
    ) {
        let mut s = SamplingController::new(32, 2, period);
        let mut fills = 0u64;
        let mut hits = 0u64;
        for (i, (set, is_fill)) in ops.iter().enumerate() {
            if *is_fill {
                let _ = s.fill_mode(*set);
                fills += 1;
            } else {
                s.on_hit(*set);
                hits += 1;
            }
            if i % 64 == 63 {
                s.on_ep_end();
            }
        }
        let frozen = s.frozen();
        let total_ins: u64 = frozen.iter().map(|m| m.insertions).sum();
        let total_hits: u64 = frozen.iter().map(|m| m.hits).sum();
        // EWMA of counted subsets can never exceed the raw event counts.
        prop_assert!(total_ins <= fills);
        prop_assert!(total_hits <= hits);
    }

    #[test]
    fn amat_is_monotone_in_its_arguments(
        hits in 0u64..1000,
        insertions in 0u64..1000,
        hit_lat in 1.0f64..40.0,
        miss_lat in 40.0f64..400.0,
        tol in 0.0f64..60.0,
    ) {
        let s = ModeSample { hits, insertions };
        let a = amat_gpu(s, hit_lat, miss_lat, tol);
        prop_assert!(a >= 0.0);
        // More tolerance never increases AMAT.
        prop_assert!(amat_gpu(s, hit_lat, miss_lat, tol + 5.0) <= a + 1e-9);
        // Higher hit latency never decreases AMAT.
        prop_assert!(amat_gpu(s, hit_lat + 5.0, miss_lat, tol) >= a - 1e-9);
        // Higher miss latency never decreases AMAT (when misses exist).
        prop_assert!(amat_gpu(s, hit_lat, miss_lat + 50.0, tol) >= a - 1e-9);
    }

    #[test]
    fn sc_manager_never_panics_and_invalidations_pair_with_rebuilds(
        words in prop::collection::vec(any::<u32>(), 1..120),
        period in 2u64..12,
    ) {
        let mut m = ScManager::new(period);
        let mut invalidations = 0u64;
        for (i, w) in words.iter().enumerate() {
            m.observe_fill(&CacheLine::from_u32_words(&[*w; 32]));
            let _ = m.compress(&CacheLine::from_u32_words(&[*w; 32]));
            if i % 8 == 7 {
                m.on_ep_end();
            }
            if m.take_invalidation() {
                invalidations += 1;
            }
        }
        prop_assert!(invalidations <= m.rebuilds());
    }
}

/// Mode decisions stay stable when the same probe repeats (no oscillation
/// from pure bookkeeping).
#[test]
fn repeated_identical_probes_stabilise() {
    let mut latte = LatteCc::new(LatteConfig::paper());
    let probe = EpProbe {
        avg_warps_available: 8.0,
        avg_exec_cycles_per_schedule: 2.0,
        l1_accesses: 256,
        cycles: 1024,
        end_cycle: 0,
        ep_index: 0,
    };
    for _ in 0..5 {
        latte.on_ep(&probe);
    }
    let first = latte.selected_mode();
    for _ in 0..50 {
        latte.on_ep(&probe);
        assert_eq!(latte.selected_mode(), first, "decision oscillated");
    }
}

/// The three modes map to three distinct storage behaviours.
#[test]
fn learning_fills_differ_by_role() {
    let mut latte = LatteCc::new(LatteConfig::paper());
    let line = CacheLine::from_u32_words(&(0..32).map(|i| 100 + i).collect::<Vec<_>>());
    // Paper L1 with 2 dedicated sets/mode: roles at sets 0,1,2 / 16,17,18.
    let (a0, _) = latte.compress_fill(0, &line);
    let (a1, c1) = latte.compress_fill(1, &line);
    let (a2, _) = latte.compress_fill(2, &line);
    assert_eq!(a0, CompressionAlgo::None);
    assert_eq!(a1, CompressionAlgo::Bdi);
    assert!(c1.is_compressed());
    assert_eq!(a2, CompressionAlgo::Sc);
    assert_eq!(CompressionMode::ALL.len(), 3);
}
