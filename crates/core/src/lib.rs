//! **LATTE-CC**: Latency Tolerance Aware Adaptive Cache Compression
//! Management for Energy Efficient GPUs — the core contribution of the
//! HPCA 2018 paper, reproduced in Rust.
//!
//! GPU L1 data caches are capacity-starved, and cache compression can
//! expand them — but every compressed hit pays a decompression latency.
//! Whether that latency matters depends on the GPU's *latency tolerance*:
//! how many other warps are ready to execute while a hit decompresses.
//! LATTE-CC measures that tolerance at fine (experimental-phase) grain and
//! switches the L1 between three operating modes to minimise the
//! GPU-specific average memory access time ([`amat_gpu`], Eq. 2):
//!
//! * [`CompressionMode::None`] — when compression doesn't pay,
//! * [`CompressionMode::LowLatency`] — BDI, 2-cycle decompression,
//! * [`CompressionMode::HighCapacity`] — SC (14 cycles) or BPC (11).
//!
//! This crate provides the [`LatteCc`] controller plus every comparison
//! policy of the paper's evaluation: [`StaticBdi`], [`StaticSc`],
//! [`StaticBpc`], [`AdaptiveHitCount`], [`AdaptiveCmp`] and the
//! [`run_kernel_opt`] oracle. All plug into the `latte-gpusim` simulator
//! through the [`latte_gpusim::L1CompressionPolicy`] hook.
//!
//! # Example
//!
//! ```
//! use latte_core::{LatteCc, LatteConfig, StaticBdi};
//! use latte_gpusim::testing::StridedKernel;
//! use latte_gpusim::{Gpu, GpuConfig};
//!
//! let kernel = StridedKernel::new(8, 400, 300);
//! let mut latte = Gpu::new(&GpuConfig::small(), |_| Box::new(LatteCc::new(LatteConfig::paper())));
//! let mut bdi = Gpu::new(&GpuConfig::small(), |_| Box::new(StaticBdi::new()));
//! let latte_stats = latte.run_kernel(&kernel);
//! let bdi_stats = bdi.run_kernel(&kernel);
//! println!("LATTE-CC {:.2} IPC vs Static-BDI {:.2} IPC", latte_stats.ipc(), bdi_stats.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amat;
mod assist;
mod controller;
mod error;
mod kernel_opt;
mod mode;
mod multi;
mod sc_manager;
mod static_policies;

pub use amat::{amat_cmp, amat_gpu, ModeSample};
pub use assist::{AssistWarp, AssistWarpConfig};
pub use controller::{AdaptiveCmp, AdaptiveHitCount, LatteCc, LatteConfig, SamplingController};
pub use error::SimError;
pub use kernel_opt::{run_kernel_opt, KernelOptKernel, KernelOptResult};
pub use mode::{CompressionMode, HighCapacityAlgo};
pub use multi::{LatteCcMulti, ModeOption, MultiConfig};
pub use sc_manager::ScManager;
pub use static_policies::{StaticBdi, StaticBpc, StaticSc};
