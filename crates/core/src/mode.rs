//! LATTE-CC's three compression operating modes (§III).

use latte_compress::CompressionAlgo;
use std::fmt;

/// The high-capacity component algorithm (§V-E: LATTE-CC is agnostic to
/// the underlying compressor; the paper evaluates both SC and BPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HighCapacityAlgo {
    /// Huffman-based statistical compression (the paper's default).
    #[default]
    Sc,
    /// Bit-plane compression (the Fig 18 variant).
    Bpc,
}

impl HighCapacityAlgo {
    /// The corresponding [`CompressionAlgo`] tag.
    #[must_use]
    pub fn algo(self) -> CompressionAlgo {
        match self {
            HighCapacityAlgo::Sc => CompressionAlgo::Sc,
            HighCapacityAlgo::Bpc => CompressionAlgo::Bpc,
        }
    }
}

/// One of LATTE-CC's three operating modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionMode {
    /// Baseline: store lines raw.
    #[default]
    None,
    /// Low-latency compression (BDI: 2-cycle decompression).
    LowLatency,
    /// High-capacity compression (SC: 14-cycle, or BPC: 11-cycle).
    HighCapacity,
}

impl CompressionMode {
    /// All three modes, in learning-phase order.
    pub const ALL: [CompressionMode; 3] = [
        CompressionMode::None,
        CompressionMode::LowLatency,
        CompressionMode::HighCapacity,
    ];

    /// The algorithm tag this mode stores lines with.
    #[must_use]
    pub fn algo(self, high: HighCapacityAlgo) -> CompressionAlgo {
        match self {
            CompressionMode::None => CompressionAlgo::None,
            CompressionMode::LowLatency => CompressionAlgo::Bdi,
            CompressionMode::HighCapacity => high.algo(),
        }
    }

    /// A small dense index (for per-mode counter arrays).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CompressionMode::None => 0,
            CompressionMode::LowLatency => 1,
            CompressionMode::HighCapacity => 2,
        }
    }
}

impl fmt::Display for CompressionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompressionMode::None => "no-compression",
            CompressionMode::LowLatency => "low-latency",
            CompressionMode::HighCapacity => "high-capacity",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_algo_mapping() {
        assert_eq!(
            CompressionMode::None.algo(HighCapacityAlgo::Sc),
            CompressionAlgo::None
        );
        assert_eq!(
            CompressionMode::LowLatency.algo(HighCapacityAlgo::Sc),
            CompressionAlgo::Bdi
        );
        assert_eq!(
            CompressionMode::HighCapacity.algo(HighCapacityAlgo::Sc),
            CompressionAlgo::Sc
        );
        assert_eq!(
            CompressionMode::HighCapacity.algo(HighCapacityAlgo::Bpc),
            CompressionAlgo::Bpc
        );
    }

    #[test]
    fn indices_are_dense() {
        let mut seen = [false; 3];
        for m in CompressionMode::ALL {
            seen[m.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_names() {
        assert_eq!(CompressionMode::LowLatency.to_string(), "low-latency");
    }
}
