//! The AMAT_GPU model of §III-A.
//!
//! Conventional AMAT (Eq. 1) charges every hit its full hit latency. On a
//! GPU, ready warps hide part (or all) of the hit latency, so Eq. (2)
//! charges only the *exposed* portion:
//!
//! ```text
//! AMAT_GPU = (N_hits · max(hit_latency − latency_tolerance, 0)
//!             + N_misses · miss_latency) / (N_hits + N_misses)
//! ```
//!
//! (The paper's formula prints `min[.., 0]`; the surrounding text makes
//! clear tolerance *subtracts from* exposed latency with a floor at zero —
//! as printed the hit term would always be ≤ 0. We implement the `max`
//! reading and record the deviation in DESIGN.md.)

/// Per-mode measurements collected from the dedicated sets during a
/// learning phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeSample {
    /// Cache hits observed on the mode's dedicated sets.
    pub hits: u64,
    /// Cache line insertions (misses) observed on the mode's dedicated
    /// sets (§III-B1 counts insertions, not lookup misses).
    pub insertions: u64,
}

impl ModeSample {
    /// Total accesses in the sample.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.insertions
    }

    /// Hit rate within the sample (0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// Computes AMAT_GPU (Eq. 2) for one mode.
///
/// * `sample` — hit/insertion counts from the mode's dedicated sets,
/// * `hit_latency` — the mode's effective L1 hit latency in cycles
///   (base + decompression pipeline + expected queueing),
/// * `miss_latency` — average L1 miss service latency in cycles,
/// * `latency_tolerance` — the Eq. (4) estimate for the current EP.
///
/// # Example
///
/// ```
/// use latte_core::{amat_gpu, ModeSample};
///
/// let sample = ModeSample { hits: 80, insertions: 20 };
/// // Fully tolerant pipeline: only misses cost anything.
/// let tolerant = amat_gpu(sample, 18.0, 200.0, 100.0);
/// // Intolerant pipeline: hits expose their full latency.
/// let exposed = amat_gpu(sample, 18.0, 200.0, 0.0);
/// assert!(tolerant < exposed);
/// ```
#[must_use]
pub fn amat_gpu(sample: ModeSample, hit_latency: f64, miss_latency: f64, latency_tolerance: f64) -> f64 {
    let accesses = sample.accesses();
    if accesses == 0 {
        return 0.0;
    }
    let exposed_hit = (hit_latency - latency_tolerance).max(0.0);
    let total_hit = sample.hits as f64 * exposed_hit;
    let total_miss = sample.insertions as f64 * miss_latency;
    (total_hit + total_miss) / accesses as f64
}

/// Conventional AMAT (Eq. 1) — what a latency-tolerance-blind adaptive
/// policy (Adaptive-CMP, §V-D) minimises.
#[must_use]
pub fn amat_cmp(sample: ModeSample, hit_latency: f64, miss_latency: f64) -> f64 {
    amat_gpu(sample, hit_latency, miss_latency, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_reduces_amat() {
        let s = ModeSample {
            hits: 100,
            insertions: 10,
        };
        let a0 = amat_gpu(s, 18.0, 200.0, 0.0);
        let a10 = amat_gpu(s, 18.0, 200.0, 10.0);
        let a18 = amat_gpu(s, 18.0, 200.0, 18.0);
        let a30 = amat_gpu(s, 18.0, 200.0, 30.0);
        assert!(a0 > a10 && a10 > a18);
        assert_eq!(a18, a30, "tolerance beyond the hit latency is free");
    }

    #[test]
    fn exposed_latency_never_negative() {
        let s = ModeSample {
            hits: 100,
            insertions: 0,
        };
        assert_eq!(amat_gpu(s, 5.0, 200.0, 100.0), 0.0);
    }

    #[test]
    fn capacity_vs_latency_tradeoff() {
        // High-capacity mode: more hits, longer hit latency.
        let hc = ModeSample {
            hits: 90,
            insertions: 10,
        };
        // No compression: fewer hits, short hit latency.
        let none = ModeSample {
            hits: 60,
            insertions: 40,
        };
        // With zero tolerance the decompression cost is exposed but misses
        // dominate: HC still wins here because its miss saving is huge.
        let hc_amat = amat_gpu(hc, 19.0, 200.0, 0.0);
        let none_amat = amat_gpu(none, 4.0, 200.0, 0.0);
        assert!(hc_amat < none_amat);
        // But if HC barely saves misses, exposure flips the decision...
        let hc_marginal = ModeSample {
            hits: 62,
            insertions: 38,
        };
        let hc_marginal_amat = amat_gpu(hc_marginal, 19.0, 200.0, 0.0);
        assert!(none_amat < hc_marginal_amat);
        // ...unless the pipeline can hide the decompression latency.
        let hc_tolerant = amat_gpu(hc_marginal, 19.0, 200.0, 19.0);
        assert!(hc_tolerant < none_amat);
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(amat_gpu(ModeSample::default(), 4.0, 200.0, 0.0), 0.0);
    }

    #[test]
    fn cmp_variant_ignores_tolerance() {
        let s = ModeSample {
            hits: 10,
            insertions: 10,
        };
        assert_eq!(amat_cmp(s, 18.0, 200.0), amat_gpu(s, 18.0, 200.0, 0.0));
    }

    #[test]
    fn sample_hit_rate() {
        let s = ModeSample {
            hits: 30,
            insertions: 10,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ModeSample::default().hit_rate(), 0.0);
    }
}
