//! The static (non-adaptive) compression policies the paper compares
//! against: Static-BDI, Static-SC and Static-BPC (§V-A).

use crate::sc_manager::ScManager;
use latte_compress::{Bdi, Bpc, CacheLine, Compression, CompressionAlgo, Compressor};
use latte_gpusim::{EpProbe, L1CompressionPolicy};

/// Static-BDI: compress every fill with BDI.
#[derive(Debug, Clone, Default)]
pub struct StaticBdi {
    bdi: Bdi,
}

impl StaticBdi {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> StaticBdi {
        StaticBdi::default()
    }
}

impl L1CompressionPolicy for StaticBdi {
    fn name(&self) -> &'static str {
        "Static-BDI"
    }

    fn compress_fill(&mut self, _set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::Bdi, self.bdi.probe(line))
    }
}

/// Static-BPC: compress every fill with bit-plane compression.
#[derive(Debug, Clone, Default)]
pub struct StaticBpc {
    bpc: Bpc,
}

impl StaticBpc {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> StaticBpc {
        StaticBpc::default()
    }
}

impl L1CompressionPolicy for StaticBpc {
    fn name(&self) -> &'static str {
        "Static-BPC"
    }

    fn compress_fill(&mut self, _set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        (CompressionAlgo::Bpc, self.bpc.probe(line))
    }
}

/// Static-SC: compress every fill with statistical compression, retraining
/// the VFT each period per §IV-C2.
#[derive(Debug, Clone)]
pub struct StaticSc {
    manager: ScManager,
}

impl StaticSc {
    /// Creates the policy with the paper's 10-EP period.
    #[must_use]
    pub fn new() -> StaticSc {
        StaticSc::with_period(10)
    }

    /// Creates the policy with a custom period length.
    #[must_use]
    pub fn with_period(eps_per_period: u64) -> StaticSc {
        StaticSc {
            manager: ScManager::new(eps_per_period),
        }
    }
}

impl Default for StaticSc {
    fn default() -> StaticSc {
        StaticSc::new()
    }
}

impl L1CompressionPolicy for StaticSc {
    fn name(&self) -> &'static str {
        "Static-SC"
    }

    fn compress_fill(&mut self, _set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        self.manager.observe_fill(line);
        (CompressionAlgo::Sc, self.manager.probe(line))
    }

    fn on_ep(&mut self, _probe: &EpProbe) {
        self.manager.on_ep_end();
    }

    fn on_kernel_start(&mut self) {
        self.manager.on_kernel_start();
    }

    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        self.manager.take_invalidation().then_some(CompressionAlgo::Sc)
    }

    fn validate(&self) -> Result<(), String> {
        self.manager.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bdi_friendly() -> CacheLine {
        CacheLine::from_u32_words(&(0..32).map(|i| 0x1000 + i).collect::<Vec<_>>())
    }

    fn sc_friendly() -> CacheLine {
        let vals = [f32::to_bits(1.5), f32::to_bits(-2.25), f32::to_bits(9.75), 0];
        CacheLine::from_u32_words(&(0..32).map(|i| vals[i % 4]).collect::<Vec<_>>())
    }

    #[test]
    fn static_bdi_compresses_spatial_lines() {
        let mut p = StaticBdi::new();
        let (algo, c) = p.compress_fill(0, &bdi_friendly());
        assert_eq!(algo, CompressionAlgo::Bdi);
        assert!(c.is_compressed());
    }

    #[test]
    fn static_bpc_compresses_strided_lines() {
        let mut p = StaticBpc::new();
        let (algo, c) = p.compress_fill(0, &bdi_friendly());
        assert_eq!(algo, CompressionAlgo::Bpc);
        assert!(c.is_compressed());
    }

    #[test]
    fn static_sc_trains_then_compresses() {
        let mut p = StaticSc::with_period(10);
        // First EP: training, no compression yet.
        let (_, c) = p.compress_fill(0, &sc_friendly());
        assert!(!c.is_compressed());
        for _ in 0..20 {
            let _ = p.compress_fill(0, &sc_friendly());
        }
        p.on_ep(&EpProbe::default());
        assert_eq!(p.pending_invalidation(), Some(CompressionAlgo::Sc));
        assert_eq!(p.pending_invalidation(), None);
        let (algo, c) = p.compress_fill(0, &sc_friendly());
        assert_eq!(algo, CompressionAlgo::Sc);
        assert!(c.is_compressed());
        assert!(c.size_bytes() <= 32, "4-symbol alphabet: got {}", c.size_bytes());
    }
}
