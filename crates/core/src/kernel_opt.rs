//! Kernel-OPT (§V-B): an offline oracle that replays every kernel under
//! each static compression mode and commits, per kernel, the mode with the
//! lowest execution time.
//!
//! The paper uses it as an upper-bound reference for coarse-grained
//! (kernel-boundary) adaptation; LATTE-CC's fine-grained adaptation can
//! beat it on workloads whose best mode changes *within* a kernel.

use crate::mode::CompressionMode;
use crate::static_policies::{StaticBdi, StaticSc};
use latte_gpusim::{Gpu, GpuConfig, Kernel, KernelStats, L1CompressionPolicy, UncompressedPolicy};

/// Per-kernel outcome of the oracle.
#[derive(Debug, Clone)]
pub struct KernelOptKernel {
    /// Kernel name.
    pub name: String,
    /// Execution cycles under [none, low-latency, high-capacity].
    pub cycles: [u64; 3],
    /// The oracle's choice.
    pub best: CompressionMode,
    /// Full statistics of the winning run.
    pub best_stats: KernelStats,
}

/// Result of running Kernel-OPT over a kernel sequence.
#[derive(Debug, Clone)]
pub struct KernelOptResult {
    /// Per-kernel outcomes, in execution order.
    pub kernels: Vec<KernelOptKernel>,
}

impl KernelOptResult {
    /// Total cycles of the oracle schedule.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.best_stats.cycles).sum()
    }

    /// Aggregated statistics of the oracle schedule.
    #[must_use]
    pub fn total_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for k in &self.kernels {
            total.accumulate(&k.best_stats);
        }
        total
    }

    /// Fraction of kernels (weighted by their oracle runtime) whose best
    /// mode is `mode` — the reference signal for the Fig 15 agreement
    /// analysis.
    #[must_use]
    pub fn time_fraction_in(&self, mode: CompressionMode) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        let in_mode: u64 = self
            .kernels
            .iter()
            .filter(|k| k.best == mode)
            .map(|k| k.best_stats.cycles)
            .sum();
        in_mode as f64 / total as f64
    }
}

/// Runs the Kernel-OPT oracle: each kernel is executed under all three
/// static modes (on per-mode GPUs whose policy state persists across
/// kernels, exactly as a real static configuration would) and the fastest
/// run is committed.
///
/// Requires `config.flush_at_kernel_boundary` so kernels are independent;
/// this matches the simulator's default.
pub fn run_kernel_opt(config: &GpuConfig, kernels: &[&dyn Kernel]) -> KernelOptResult {
    let mut gpus: [Gpu; 3] = [
        Gpu::new(config, |_| {
            Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>
        }),
        Gpu::new(config, |_| {
            Box::new(StaticBdi::new()) as Box<dyn L1CompressionPolicy>
        }),
        Gpu::new(config, |_| {
            Box::new(StaticSc::new()) as Box<dyn L1CompressionPolicy>
        }),
    ];
    let mut result = KernelOptResult {
        kernels: Vec::with_capacity(kernels.len()),
    };
    for &kernel in kernels {
        let runs: Vec<KernelStats> = gpus.iter_mut().map(|g| g.run_kernel(kernel)).collect();
        let cycles = [runs[0].cycles, runs[1].cycles, runs[2].cycles];
        let best_idx = (0..3).min_by_key(|&i| cycles[i]).unwrap_or(0);
        let best = CompressionMode::ALL[best_idx];
        result.kernels.push(KernelOptKernel {
            name: kernel.name().to_owned(),
            cycles,
            best,
            best_stats: runs[best_idx].clone(),
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use latte_gpusim::testing::StridedKernel;

    #[test]
    fn oracle_picks_the_fastest_mode_per_kernel() {
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        // A thrashing kernel (compression helps) and a fitting one.
        let big = StridedKernel::new(8, 400, 512);
        let small = StridedKernel::new(8, 400, 16);
        let result = run_kernel_opt(&config, &[&big, &small]);
        assert_eq!(result.kernels.len(), 2);
        for k in &result.kernels {
            let min = *k.cycles.iter().min().expect("three modes");
            assert_eq!(k.best_stats.cycles, min);
        }
        assert!(result.total_cycles() > 0);
        let f: f64 = CompressionMode::ALL
            .into_iter()
            .map(|m| result.time_fraction_in(m))
            .sum();
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_beats_or_matches_every_static_mode() {
        let config = GpuConfig {
            num_sms: 1,
            ..GpuConfig::small()
        };
        let k1 = StridedKernel::new(8, 300, 512);
        let k2 = StridedKernel::new(4, 300, 16);
        let kernels: Vec<&dyn Kernel> = vec![&k1, &k2];
        let result = run_kernel_opt(&config, &kernels);
        // Re-run each static mode over the full sequence.
        for (i, make) in [
            (0usize, &(|| Box::new(UncompressedPolicy) as Box<dyn L1CompressionPolicy>)
                as &dyn Fn() -> Box<dyn L1CompressionPolicy>),
            (1, &(|| Box::new(StaticBdi::new()) as Box<dyn L1CompressionPolicy>)),
            (2, &(|| Box::new(StaticSc::new()) as Box<dyn L1CompressionPolicy>)),
        ] {
            let _ = i;
            let mut gpu = Gpu::new(&config, |_| make());
            let total: u64 = kernels.iter().map(|k| gpu.run_kernel(*k).cycles).sum();
            assert!(
                result.total_cycles() <= total,
                "oracle must not lose to a static mode"
            );
        }
    }
}
