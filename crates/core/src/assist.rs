//! The assist-warp comparison policy: CABA-style software-managed cache
//! compression (Vijaykumar et al., "A Case for Core-Assisted Bottleneck
//! Acceleration in GPUs", ISCA 2015; arXiv 1602.01348).
//!
//! CABA performs (de)compression with *assist warps* — short software
//! routines dispatched onto the SM's own SIMD lanes — instead of
//! dedicated hardware. The routines are free when the scheduler has
//! spare issue slots, but they compete with regular warps for those
//! slots when the SM is already issue-bound. This policy models that
//! trade-off at EP granularity using the same latency-tolerance probe
//! LATTE-CC consumes:
//!
//! * **Tolerant EPs** (spare warps cover memory latency): compress every
//!   fill with BDI and charge only the pipeline-visible portion of the
//!   software decompression routine — the rest hides in idle slots.
//! * **Intolerant EPs**: stop compressing new fills, because an assist
//!   warp would steal issue slots from the warps the SM is starved for.
//!   Hits on *resident* BDI lines still pay the full software routine,
//!   now exposed — the hysteresis cost that distinguishes assist warps
//!   from LATTE-CC's hardware decompressors.

use latte_compress::{Bdi, CacheLine, Compression, CompressionAlgo, Compressor, Cycles};
use latte_gpusim::{EpProbe, L1CompressionPolicy, PolicyReport};

/// Tuning knobs for [`AssistWarp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssistWarpConfig {
    /// Latency-tolerance threshold (Eq. 4 units) above which assist
    /// warps are considered free: at least one spare ready warp per
    /// scheduler greed-run.
    pub tolerance_threshold: f64,
    /// Cycles of the software decompression routine that stay visible
    /// when the SM is issue-bound (the full SIMD routine: one warp
    /// sweeping 32 words plus the dispatch handshake).
    pub exposed_latency: Cycles,
    /// Visible latency when spare issue slots hide the routine —
    /// the dispatch handshake only, matching hardware BDI's 2 cycles.
    pub hidden_latency: Cycles,
}

impl Default for AssistWarpConfig {
    fn default() -> AssistWarpConfig {
        AssistWarpConfig {
            tolerance_threshold: 1.0,
            exposed_latency: 8,
            hidden_latency: 2,
        }
    }
}

/// The assist-warp policy: BDI in software, gated by latency tolerance.
#[derive(Debug, Clone)]
pub struct AssistWarp {
    config: AssistWarpConfig,
    bdi: Bdi,
    /// Whether the current EP dispatches assist warps on fills.
    compressing: bool,
    eps_in_mode: [u64; 3],
}

impl AssistWarp {
    /// Creates the policy with the default knobs.
    #[must_use]
    pub fn new() -> AssistWarp {
        AssistWarp::with_config(AssistWarpConfig::default())
    }

    /// Creates the policy with explicit knobs.
    #[must_use]
    pub fn with_config(config: AssistWarpConfig) -> AssistWarp {
        AssistWarp {
            config,
            bdi: Bdi::new(),
            // CABA ships with compression on; the first EP probe adjusts.
            compressing: true,
            eps_in_mode: [0; 3],
        }
    }
}

impl Default for AssistWarp {
    fn default() -> AssistWarp {
        AssistWarp::new()
    }
}

impl L1CompressionPolicy for AssistWarp {
    fn name(&self) -> &'static str {
        "Assist-Warp"
    }

    fn compress_fill(&mut self, _set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        if self.compressing {
            (CompressionAlgo::Bdi, self.bdi.probe(line))
        } else {
            (CompressionAlgo::None, Compression::UNCOMPRESSED)
        }
    }

    fn decompression_latency(&self, algo: CompressionAlgo) -> Cycles {
        match algo {
            CompressionAlgo::None => 0,
            CompressionAlgo::Bdi => {
                if self.compressing {
                    self.config.hidden_latency
                } else {
                    self.config.exposed_latency
                }
            }
            // Lines this policy never produces keep their hardware cost
            // (only reachable if a cache carries foreign lines).
            other => other.decompression_latency(),
        }
    }

    fn on_ep(&mut self, probe: &EpProbe) {
        self.compressing = probe.latency_tolerance() >= self.config.tolerance_threshold;
        self.eps_in_mode[usize::from(self.compressing)] += 1;
    }

    fn on_kernel_start(&mut self) {
        self.compressing = true;
        self.eps_in_mode = [0; 3];
    }

    fn report(&self) -> PolicyReport {
        PolicyReport {
            eps_in_mode: self.eps_in_mode,
        }
    }

    fn current_mode_index(&self) -> Option<usize> {
        Some(usize::from(self.compressing))
    }

    fn validate(&self) -> Result<(), String> {
        if !self.config.tolerance_threshold.is_finite() || self.config.tolerance_threshold < 0.0 {
            return Err(format!(
                "assist-warp tolerance threshold {} is not a finite non-negative number",
                self.config.tolerance_threshold
            ));
        }
        if self.config.hidden_latency > self.config.exposed_latency {
            return Err(format!(
                "assist-warp hidden latency {} exceeds exposed latency {}",
                self.config.hidden_latency, self.config.exposed_latency
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bdi_friendly() -> CacheLine {
        CacheLine::from_u32_words(&(0..32).map(|i| 0x1000 + i).collect::<Vec<_>>())
    }

    fn probe(tolerance: f64) -> EpProbe {
        EpProbe {
            avg_warps_available: tolerance,
            avg_exec_cycles_per_schedule: 1.0,
            ..EpProbe::default()
        }
    }

    #[test]
    fn compresses_while_tolerant() {
        let mut p = AssistWarp::new();
        let (algo, c) = p.compress_fill(0, &bdi_friendly());
        assert_eq!(algo, CompressionAlgo::Bdi);
        assert!(c.is_compressed());
        assert_eq!(p.decompression_latency(CompressionAlgo::Bdi), 2);
    }

    #[test]
    fn intolerant_ep_stops_compressing_and_exposes_residents() {
        let mut p = AssistWarp::new();
        p.on_ep(&probe(0.25));
        let (algo, c) = p.compress_fill(0, &bdi_friendly());
        assert_eq!(algo, CompressionAlgo::None);
        assert!(!c.is_compressed());
        // Resident BDI lines now pay the full software routine.
        assert_eq!(p.decompression_latency(CompressionAlgo::Bdi), 8);
        assert_eq!(p.current_mode_index(), Some(0));
    }

    #[test]
    fn tolerance_recovery_re_enables_assist_warps() {
        let mut p = AssistWarp::new();
        p.on_ep(&probe(0.25));
        p.on_ep(&probe(4.0));
        let (algo, _) = p.compress_fill(0, &bdi_friendly());
        assert_eq!(algo, CompressionAlgo::Bdi);
        assert_eq!(p.report().eps_in_mode, [1, 1, 0]);
        assert_eq!(p.current_mode_index(), Some(1));
    }

    #[test]
    fn kernel_start_resets_state() {
        let mut p = AssistWarp::new();
        p.on_ep(&probe(0.25));
        p.on_kernel_start();
        assert_eq!(p.current_mode_index(), Some(1));
        assert_eq!(p.report().total_eps(), 0);
    }

    #[test]
    fn validate_rejects_inverted_latencies() {
        let p = AssistWarp::with_config(AssistWarpConfig {
            hidden_latency: 10,
            exposed_latency: 4,
            ..AssistWarpConfig::default()
        });
        assert!(p.validate().is_err());
        assert!(AssistWarp::new().validate().is_ok());
    }
}
