//! The LATTE-CC controller (§III) and the two adaptive baselines of §V-D.
//!
//! All three share the set-sampling learning machinery of §III-B1
//! ([`SamplingController`]); they differ in the decision function:
//!
//! * **LATTE-CC** — argmin AMAT_GPU (Eq. 2) re-evaluated at *every*
//!   adaptive-phase EP with the current latency tolerance (Eq. 4),
//! * **Adaptive-Hit-Count** — argmax hit count, latency-blind,
//! * **Adaptive-CMP** — argmin conventional AMAT (Eq. 1): decompression
//!   latency accounted, latency tolerance not.

use crate::amat::{amat_cmp, amat_gpu, ModeSample};
use crate::mode::{CompressionMode, HighCapacityAlgo};
use crate::sc_manager::ScManager;
use latte_cache::{SetRole, SetSampler};
use latte_compress::{Bdi, Bpc, CacheLine, Compression, CompressionAlgo, Compressor};
use latte_gpusim::{AccessEvent, EpProbe, L1CompressionPolicy, PolicyReport, TraceSink};

/// Tunables of the LATTE-CC controller (§IV-C3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct LatteConfig {
    /// EPs per period: 1 learning + (N−1) adaptive (paper: 10).
    pub eps_per_period: u64,
    /// Number of L1 sets (32 for the paper's 16 KB L1).
    pub num_l1_sets: usize,
    /// Dedicated sets per compression mode. The paper dedicates 4 per
    /// mode (12 of 32 sets, §IV-C3) but reverts them to followers after
    /// the learning EP; this reproduction keeps sets dedicated for the
    /// whole period and compensates by dedicating only 2 per mode (6 of
    /// 32 sets) — see DESIGN.md §4.6 for the measured justification.
    pub dedicated_sets_per_mode: usize,
    /// Base L1 hit latency in cycles; must match the GPU config.
    pub l1_base_hit_latency: f64,
    /// Average L1 miss service latency in cycles, used in the AMAT
    /// estimate (between the 120-cycle L2 and 230-cycle DRAM latencies).
    pub miss_latency: f64,
    /// Scale applied to the Eq. (4) tolerance estimate (calibration knob).
    pub tolerance_scale: f64,
    /// Which algorithm backs the high-capacity mode.
    pub high_capacity: HighCapacityAlgo,
    /// Decode failures tolerated within one kernel before the controller
    /// demotes itself to uncompressed operation — the integrity analogue
    /// of the paper's latency fallback (compression must never endanger
    /// the baseline). Resets at kernel boundaries.
    pub decode_error_demotion_threshold: u64,
    /// Calibration hook: pin the selected mode, bypassing the AMAT
    /// decision while keeping all sampling machinery running.
    pub force_mode: Option<CompressionMode>,
    /// Sink receiving one line per AMAT decision (samples, tolerance,
    /// winner). `None` disables decision tracing. The driver installs
    /// this (e.g. `latte-bench --debug-decide` routes it into the
    /// per-experiment output capture); the controller itself never
    /// writes to stdout/stderr.
    pub decide_trace: Option<TraceSink>,
}

impl LatteConfig {
    /// The paper's configuration for the 16 KB L1.
    #[must_use]
    pub fn paper() -> LatteConfig {
        LatteConfig {
            eps_per_period: 10,
            num_l1_sets: 32,
            dedicated_sets_per_mode: 2,
            l1_base_hit_latency: 4.0,
            // The *effective* cost of an L1 miss as the pipeline sees it:
            // below the raw 120-cycle L2 round trip because concurrent
            // misses overlap across (and within) warps.
            miss_latency: 150.0,
            tolerance_scale: 2.0,
            high_capacity: HighCapacityAlgo::Sc,
            decode_error_demotion_threshold: 8,
            force_mode: None,
            decide_trace: None,
        }
    }

    /// Sets the AMAT effective miss latency (replaces the removed
    /// `LATTE_MISS_LATENCY` env knob).
    #[must_use]
    pub fn with_miss_latency(mut self, cycles: f64) -> LatteConfig {
        self.miss_latency = cycles;
        self
    }

    /// Sets the Eq. (4) tolerance-estimate scale (replaces the removed
    /// `LATTE_TOLERANCE_SCALE` env knob).
    #[must_use]
    pub fn with_tolerance_scale(mut self, scale: f64) -> LatteConfig {
        self.tolerance_scale = scale;
        self
    }

    /// Effective hit latency the AMAT model charges for `mode` (base +
    /// decompression pipeline + one decompressor service slot, Eq. 3 with
    /// an idle queue).
    #[must_use]
    pub fn hit_latency(&self, mode: CompressionMode) -> f64 {
        match mode {
            CompressionMode::None => self.l1_base_hit_latency,
            CompressionMode::LowLatency => {
                self.l1_base_hit_latency + CompressionAlgo::Bdi.decompression_latency() as f64 + 1.0
            }
            CompressionMode::HighCapacity => {
                self.l1_base_hit_latency
                    + self.high_capacity.algo().decompression_latency() as f64
                    + 1.0
            }
        }
    }
}

impl Default for LatteConfig {
    fn default() -> LatteConfig {
        LatteConfig::paper()
    }
}

/// The set-sampling learning machinery (§III-B1), shared by every adaptive
/// policy here.
///
/// A period of `eps_per_period` EPs runs: EP 0 is the **learning phase**
/// (dedicated sets fill under their own modes; insertions are counted),
/// hits on dedicated sets keep counting through EP 1 (reuse manifests
/// after insertion), and the counters freeze at the end of EP 1 for the
/// decision function to consume.
#[derive(Debug, Clone)]
pub struct SamplingController {
    sampler: SetSampler,
    eps_per_period: u64,
    /// Completed EPs in the current period; the in-flight EP has this
    /// index.
    ep_in_period: u64,
    live: [ModeSample; 3],
    frozen: [ModeSample; 3],
}

impl SamplingController {
    /// Creates the controller.
    #[must_use]
    pub fn new(num_sets: usize, dedicated_per_mode: usize, eps_per_period: u64) -> SamplingController {
        SamplingController {
            sampler: SetSampler::new(num_sets, dedicated_per_mode),
            eps_per_period,
            ep_in_period: 0,
            live: Default::default(),
            frozen: Default::default(),
        }
    }

    fn dedicated_mode(&self, set: usize) -> Option<CompressionMode> {
        match self.sampler.role_of(set) {
            SetRole::DedicatedNone => Some(CompressionMode::None),
            SetRole::DedicatedLowLatency => Some(CompressionMode::LowLatency),
            SetRole::DedicatedHighCapacity => Some(CompressionMode::HighCapacity),
            SetRole::Follower => None,
        }
    }

    /// Which mode a fill into `set` must use, or `None` if the set follows
    /// the selected mode. Counts the insertion during the learning window.
    ///
    /// Deviation from the paper (recorded in DESIGN.md): dedicated sets
    /// stay dedicated through the whole period rather than reverting to
    /// followers after the learning EP. Refills land one L2/DRAM round
    /// trip (often a whole EP) after the triggering miss, so
    /// follower-reversion would fill dedicated sets with follower-mode
    /// lines and corrupt the per-mode samples.
    pub fn fill_mode(&mut self, set: usize) -> Option<CompressionMode> {
        let mode = self.dedicated_mode(set)?;
        if self.ep_in_period <= 1 {
            self.live[mode.index()].insertions += 1;
        }
        Some(mode)
    }

    /// Counts a hit in `set` towards its dedicated mode (during the
    /// learning EP and the one after it).
    pub fn on_hit(&mut self, set: usize) {
        if self.ep_in_period > 1 {
            return;
        }
        if let Some(mode) = self.dedicated_mode(set) {
            self.live[mode.index()].hits += 1;
        }
    }

    /// Advances the EP clock. Returns `true` when fresh frozen samples
    /// just became available (end of the hit-counting window).
    pub fn on_ep_end(&mut self) -> bool {
        self.ep_in_period += 1;
        if self.ep_in_period == 2 {
            // Blend the new window into the running estimate (EWMA with
            // α = ½): a few dozen sampled accesses per mode per period is
            // noisy enough to flip decisions period-to-period otherwise.
            for (frozen, live) in self.frozen.iter_mut().zip(self.live) {
                frozen.hits = (frozen.hits + live.hits).div_ceil(2);
                frozen.insertions = (frozen.insertions + live.insertions).div_ceil(2);
            }
            return true;
        }
        if self.ep_in_period >= self.eps_per_period {
            self.ep_in_period = 0;
            self.live = Default::default();
        }
        false
    }

    /// Restarts the period (kernel boundary).
    pub fn on_kernel_start(&mut self) {
        self.ep_in_period = 0;
        self.live = Default::default();
    }

    /// The frozen per-mode samples of the last completed learning window.
    #[must_use]
    pub fn frozen(&self) -> &[ModeSample; 3] {
        &self.frozen
    }

    /// `true` while the in-flight EP is the learning phase.
    #[must_use]
    pub fn in_learning_phase(&self) -> bool {
        self.ep_in_period == 0
    }
}

/// The LATTE-CC policy: latency tolerance aware adaptive compression
/// management (the paper's contribution).
///
/// # Example
///
/// ```
/// use latte_core::{LatteCc, LatteConfig};
/// use latte_gpusim::{Gpu, GpuConfig};
/// use latte_gpusim::testing::StridedKernel;
///
/// let gpu_config = GpuConfig::small();
/// let mut gpu = Gpu::new(&gpu_config, |_| Box::new(LatteCc::new(LatteConfig::paper())));
/// let stats = gpu.run_kernel(&StridedKernel::new(8, 512, 200));
/// assert!(stats.instructions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LatteCc {
    cfg: LatteConfig,
    sampling: SamplingController,
    bdi: Bdi,
    bpc: Bpc,
    sc: ScManager,
    tolerance: f64,
    selected: CompressionMode,
    eps_in_mode: [u64; 3],
    decode_errors: u64,
    demoted: bool,
}

impl LatteCc {
    /// Creates a LATTE-CC controller (one per SM).
    #[must_use]
    pub fn new(cfg: LatteConfig) -> LatteCc {
        let sampling = SamplingController::new(
            cfg.num_l1_sets,
            cfg.dedicated_sets_per_mode,
            cfg.eps_per_period,
        );
        let sc = ScManager::new(cfg.eps_per_period);
        LatteCc {
            cfg,
            sampling,
            bdi: Bdi::new(),
            bpc: Bpc::new(),
            sc,
            tolerance: 0.0,
            selected: CompressionMode::None,
            eps_in_mode: [0; 3],
            decode_errors: 0,
            demoted: false,
        }
    }

    /// The currently selected operating mode.
    #[must_use]
    pub fn selected_mode(&self) -> CompressionMode {
        self.selected
    }

    /// Decode failures observed since the kernel started.
    #[must_use]
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// `true` when the controller has demoted itself to uncompressed
    /// operation because the decode-failure rate crossed the threshold.
    #[must_use]
    pub fn is_demoted(&self) -> bool {
        self.demoted
    }

    /// The latest latency-tolerance estimate, in cycles.
    #[must_use]
    pub fn latency_tolerance(&self) -> f64 {
        self.tolerance
    }

    fn compress_with(&mut self, mode: CompressionMode, line: &CacheLine) -> (CompressionAlgo, Compression) {
        match mode {
            CompressionMode::None => (CompressionAlgo::None, Compression::UNCOMPRESSED),
            CompressionMode::LowLatency => (CompressionAlgo::Bdi, self.bdi.probe(line)),
            CompressionMode::HighCapacity => match self.cfg.high_capacity {
                HighCapacityAlgo::Sc => (CompressionAlgo::Sc, self.sc.probe(line)),
                HighCapacityAlgo::Bpc => (CompressionAlgo::Bpc, self.bpc.probe(line)),
            },
        }
    }

    fn decide(&mut self) {
        let frozen = *self.sampling.frozen();
        let mut best = CompressionMode::None;
        let mut best_amat = f64::INFINITY;
        for mode in CompressionMode::ALL {
            let amat = amat_gpu(
                frozen[mode.index()],
                self.cfg.hit_latency(mode),
                self.cfg.miss_latency,
                self.tolerance,
            );
            if amat < best_amat {
                best_amat = amat;
                best = mode;
            }
        }
        if let Some(trace) = &self.cfg.decide_trace {
            trace.emit(&format!(
                "decide: tol={:.2} none={:?} low={:?} high={:?} -> {best}",
                self.tolerance, frozen[0], frozen[1], frozen[2]
            ));
        }
        // Calibration hook: pin the selected mode (bypasses the AMAT
        // decision but keeps all sampling machinery running).
        if let Some(forced) = self.cfg.force_mode {
            best = forced;
        }
        // Integrity fallback: once demoted, stay uncompressed for the
        // rest of the kernel no matter what the AMAT model prefers.
        if self.demoted {
            best = CompressionMode::None;
        }
        self.selected = best;
    }
}

impl L1CompressionPolicy for LatteCc {
    fn name(&self) -> &'static str {
        "LATTE-CC"
    }

    fn compress_fill(&mut self, set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        if self.demoted {
            // Demoted: store everything raw, dedicated sets included —
            // the sampler's compressed samples are untrustworthy when
            // stored lines are being corrupted.
            return (CompressionAlgo::None, Compression::UNCOMPRESSED);
        }
        // SC trains on inserted lines whenever its window is open.
        self.sc.observe_fill(line);
        let mode = self.sampling.fill_mode(set).unwrap_or(self.selected);
        self.compress_with(mode, line)
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        if ev.hit {
            self.sampling.on_hit(ev.set);
        }
    }

    fn on_decode_error(&mut self, _algo: CompressionAlgo) {
        self.decode_errors += 1;
        if !self.demoted && self.decode_errors >= self.cfg.decode_error_demotion_threshold {
            self.demoted = true;
            self.selected = CompressionMode::None;
        }
    }

    fn on_ep(&mut self, probe: &EpProbe) {
        self.tolerance = probe.latency_tolerance() * self.cfg.tolerance_scale;
        self.sampling.on_ep_end();
        self.sc.on_ep_end();
        // §III-C: the optimal mode is re-chosen for *every* EP of the
        // adaptive phase, with the freshest tolerance estimate.
        self.decide();
        self.eps_in_mode[self.selected.index()] += 1;
    }

    fn on_kernel_start(&mut self) {
        self.sampling.on_kernel_start();
        self.sc.on_kernel_start();
        self.eps_in_mode = [0; 3];
        self.decode_errors = 0;
        self.demoted = false;
    }

    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        self.sc.take_invalidation().then_some(CompressionAlgo::Sc)
    }

    fn report(&self) -> PolicyReport {
        PolicyReport {
            eps_in_mode: self.eps_in_mode,
        }
    }

    fn current_mode_index(&self) -> Option<usize> {
        Some(self.selected.index())
    }

    fn validate(&self) -> Result<(), String> {
        if self.demoted && self.selected != CompressionMode::None {
            return Err(format!(
                "demoted controller still selects {} mode",
                self.selected
            ));
        }
        self.sc.validate()
    }
}

/// Adaptive-Hit-Count (§V-D): set sampling like LATTE-CC, but the decision
/// maximises hit count and ignores decompression latency entirely.
#[derive(Debug, Clone)]
pub struct AdaptiveHitCount {
    cfg: LatteConfig,
    sampling: SamplingController,
    bdi: Bdi,
    bpc: Bpc,
    sc: ScManager,
    selected: CompressionMode,
    eps_in_mode: [u64; 3],
}

impl AdaptiveHitCount {
    /// Creates the policy.
    #[must_use]
    pub fn new(cfg: LatteConfig) -> AdaptiveHitCount {
        let sampling = SamplingController::new(
            cfg.num_l1_sets,
            cfg.dedicated_sets_per_mode,
            cfg.eps_per_period,
        );
        let sc = ScManager::new(cfg.eps_per_period);
        AdaptiveHitCount {
            cfg,
            sampling,
            bdi: Bdi::new(),
            bpc: Bpc::new(),
            sc,
            selected: CompressionMode::None,
            eps_in_mode: [0; 3],
        }
    }

    fn compress_with(&mut self, mode: CompressionMode, line: &CacheLine) -> (CompressionAlgo, Compression) {
        match mode {
            CompressionMode::None => (CompressionAlgo::None, Compression::UNCOMPRESSED),
            CompressionMode::LowLatency => (CompressionAlgo::Bdi, self.bdi.probe(line)),
            CompressionMode::HighCapacity => match self.cfg.high_capacity {
                HighCapacityAlgo::Sc => (CompressionAlgo::Sc, self.sc.probe(line)),
                HighCapacityAlgo::Bpc => (CompressionAlgo::Bpc, self.bpc.probe(line)),
            },
        }
    }
}

impl L1CompressionPolicy for AdaptiveHitCount {
    fn name(&self) -> &'static str {
        "Adaptive-Hit-Count"
    }

    fn compress_fill(&mut self, set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        self.sc.observe_fill(line);
        let mode = self.sampling.fill_mode(set).unwrap_or(self.selected);
        self.compress_with(mode, line)
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        if ev.hit {
            self.sampling.on_hit(ev.set);
        }
    }

    fn on_ep(&mut self, probe: &EpProbe) {
        let _ = probe; // latency tolerance deliberately ignored
        let fresh = self.sampling.on_ep_end();
        self.sc.on_ep_end();
        if fresh {
            // Pick once per period: the mode with the most sampled hits.
            let frozen = self.sampling.frozen();
            self.selected = CompressionMode::ALL
                .into_iter()
                .max_by_key(|m| frozen[m.index()].hits)
                .unwrap_or(CompressionMode::None);
        }
        self.eps_in_mode[self.selected.index()] += 1;
    }

    fn on_kernel_start(&mut self) {
        self.sampling.on_kernel_start();
        self.sc.on_kernel_start();
        self.eps_in_mode = [0; 3];
    }

    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        self.sc.take_invalidation().then_some(CompressionAlgo::Sc)
    }

    fn report(&self) -> PolicyReport {
        PolicyReport {
            eps_in_mode: self.eps_in_mode,
        }
    }

    fn validate(&self) -> Result<(), String> {
        self.sc.validate()
    }
}

/// Adaptive-CMP (§V-D; after Alameldeen & Wood): accounts for the
/// decompression latency penalty via conventional AMAT (Eq. 1) but is
/// blind to GPU latency tolerance.
#[derive(Debug, Clone)]
pub struct AdaptiveCmp {
    cfg: LatteConfig,
    sampling: SamplingController,
    bdi: Bdi,
    bpc: Bpc,
    sc: ScManager,
    selected: CompressionMode,
    eps_in_mode: [u64; 3],
}

impl AdaptiveCmp {
    /// Creates the policy.
    #[must_use]
    pub fn new(cfg: LatteConfig) -> AdaptiveCmp {
        let sampling = SamplingController::new(
            cfg.num_l1_sets,
            cfg.dedicated_sets_per_mode,
            cfg.eps_per_period,
        );
        let sc = ScManager::new(cfg.eps_per_period);
        AdaptiveCmp {
            cfg,
            sampling,
            bdi: Bdi::new(),
            bpc: Bpc::new(),
            sc,
            selected: CompressionMode::None,
            eps_in_mode: [0; 3],
        }
    }

    fn compress_with(&mut self, mode: CompressionMode, line: &CacheLine) -> (CompressionAlgo, Compression) {
        match mode {
            CompressionMode::None => (CompressionAlgo::None, Compression::UNCOMPRESSED),
            CompressionMode::LowLatency => (CompressionAlgo::Bdi, self.bdi.probe(line)),
            CompressionMode::HighCapacity => match self.cfg.high_capacity {
                HighCapacityAlgo::Sc => (CompressionAlgo::Sc, self.sc.probe(line)),
                HighCapacityAlgo::Bpc => (CompressionAlgo::Bpc, self.bpc.probe(line)),
            },
        }
    }
}

impl L1CompressionPolicy for AdaptiveCmp {
    fn name(&self) -> &'static str {
        "Adaptive-CMP"
    }

    fn compress_fill(&mut self, set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        self.sc.observe_fill(line);
        let mode = self.sampling.fill_mode(set).unwrap_or(self.selected);
        self.compress_with(mode, line)
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        if ev.hit {
            self.sampling.on_hit(ev.set);
        }
    }

    fn on_ep(&mut self, _probe: &EpProbe) {
        let fresh = self.sampling.on_ep_end();
        self.sc.on_ep_end();
        if fresh {
            let frozen = *self.sampling.frozen();
            let mut best = CompressionMode::None;
            let mut best_amat = f64::INFINITY;
            for mode in CompressionMode::ALL {
                let amat = amat_cmp(
                    frozen[mode.index()],
                    self.cfg.hit_latency(mode),
                    self.cfg.miss_latency,
                );
                if amat < best_amat {
                    best_amat = amat;
                    best = mode;
                }
            }
            self.selected = best;
        }
        self.eps_in_mode[self.selected.index()] += 1;
    }

    fn on_kernel_start(&mut self) {
        self.sampling.on_kernel_start();
        self.sc.on_kernel_start();
        self.eps_in_mode = [0; 3];
    }

    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        self.sc.take_invalidation().then_some(CompressionAlgo::Sc)
    }

    fn report(&self) -> PolicyReport {
        PolicyReport {
            eps_in_mode: self.eps_in_mode,
        }
    }

    fn validate(&self) -> Result<(), String> {
        self.sc.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LatteConfig {
        LatteConfig::paper()
    }

    #[test]
    fn paper_config_matches_documented_constants() {
        // Regression test for the doc/value mismatch: the paper (§IV-C3)
        // dedicates 4 sets per mode during learning EPs; this
        // reproduction deliberately dedicates 2 permanently (DESIGN.md
        // §4.6). `paper()` must produce the reproduction's documented
        // constants — and no hidden env var may change them.
        let c = LatteConfig::paper();
        assert_eq!(c.eps_per_period, 10);
        assert_eq!(c.num_l1_sets, 32);
        assert_eq!(c.dedicated_sets_per_mode, 2, "DESIGN.md §4.6: 2 per mode, not the paper's 4");
        assert_eq!(c.l1_base_hit_latency, 4.0);
        assert_eq!(c.miss_latency, 150.0);
        assert_eq!(c.tolerance_scale, 2.0);
        assert_eq!(c.high_capacity, HighCapacityAlgo::Sc);
        assert_eq!(c.decode_error_demotion_threshold, 8);
        assert_eq!(c.force_mode, None);
        assert!(c.decide_trace.is_none());
    }

    #[test]
    fn builder_methods_replace_env_knobs() {
        let c = LatteConfig::paper()
            .with_miss_latency(80.0)
            .with_tolerance_scale(0.5);
        assert_eq!(c.miss_latency, 80.0);
        assert_eq!(c.tolerance_scale, 0.5);
    }

    #[test]
    fn force_mode_pins_the_decision() {
        let mut latte = LatteCc::new(LatteConfig {
            force_mode: Some(CompressionMode::LowLatency),
            ..cfg()
        });
        // Samples that would otherwise select HighCapacity.
        latte.sampling.frozen = [
            ModeSample { hits: 10, insertions: 90 },
            ModeSample { hits: 50, insertions: 50 },
            ModeSample { hits: 90, insertions: 10 },
        ];
        latte.tolerance = 30.0;
        latte.decide();
        assert_eq!(latte.selected_mode(), CompressionMode::LowLatency);
    }

    #[test]
    fn sampling_roles_drive_learning_fills() {
        let mut s = SamplingController::new(32, 4, 10);
        assert!(s.in_learning_phase());
        assert_eq!(s.fill_mode(0), Some(CompressionMode::None));
        assert_eq!(s.fill_mode(1), Some(CompressionMode::LowLatency));
        assert_eq!(s.fill_mode(2), Some(CompressionMode::HighCapacity));
        assert_eq!(s.fill_mode(3), None, "follower set");
        // Dedicated sets stay dedicated after the learning EP (see the
        // fill_mode docs for why this deviates from the paper).
        s.on_ep_end();
        assert!(!s.in_learning_phase());
        assert_eq!(s.fill_mode(0), Some(CompressionMode::None));
    }

    #[test]
    fn insertion_counts_only_in_learning_window() {
        let mut s = SamplingController::new(32, 4, 10);
        let _ = s.fill_mode(1);
        let _ = s.fill_mode(1);
        s.on_ep_end();
        let _ = s.fill_mode(1); // EP1: still counted (refill-delay window)
        let fresh = s.on_ep_end();
        assert!(fresh);
        let _ = s.fill_mode(1); // EP2: not counted
        // 3 insertions blended into an empty estimate: ceil(3/2) = 2.
        assert_eq!(s.frozen()[CompressionMode::LowLatency.index()].insertions, 2);
    }

    #[test]
    fn hits_count_through_one_extra_ep() {
        let mut s = SamplingController::new(32, 4, 10);
        s.on_hit(2); // EP0: counted
        s.on_ep_end();
        s.on_hit(2); // EP1: still counted (§III-B1)
        s.on_ep_end();
        s.on_hit(2); // EP2: not counted
        // 2 hits blended into an empty estimate: ceil(2/2) = 1.
        assert_eq!(s.frozen()[CompressionMode::HighCapacity.index()].hits, 1);
    }

    #[test]
    fn period_wraps_and_counters_clear() {
        let mut s = SamplingController::new(32, 4, 4);
        let _ = s.fill_mode(0);
        for _ in 0..4 {
            s.on_ep_end();
        }
        assert!(s.in_learning_phase(), "period wrapped");
        let _ = s.fill_mode(0);
        s.on_ep_end();
        s.on_ep_end();
        // Fresh window has exactly the new insertion.
        assert_eq!(s.frozen()[0].insertions, 1);
    }

    #[test]
    fn latte_decides_by_tolerance() {
        let mut latte = LatteCc::new(cfg());
        // Fabricate a frozen sample where high-capacity has many more hits
        // but a long latency.
        latte.sampling.frozen = [
            ModeSample { hits: 50, insertions: 50 },
            ModeSample { hits: 60, insertions: 40 },
            ModeSample { hits: 90, insertions: 10 },
        ];
        // Low tolerance: HC's 19-cycle hits are exposed, but its miss
        // saving (40 fewer misses x 180 cycles) still dominates here.
        latte.tolerance = 0.0;
        latte.decide();
        assert_eq!(latte.selected_mode(), CompressionMode::HighCapacity);

        // Make the capacity benefit marginal: now exposure matters.
        latte.sampling.frozen = [
            ModeSample { hits: 85, insertions: 15 },
            ModeSample { hits: 86, insertions: 14 },
            ModeSample { hits: 88, insertions: 12 },
        ];
        latte.tolerance = 0.0;
        latte.decide();
        assert_eq!(latte.selected_mode(), CompressionMode::None);
        // With enough tolerance the decompression latency is free and the
        // extra hits win.
        latte.tolerance = 30.0;
        latte.decide();
        assert_eq!(latte.selected_mode(), CompressionMode::HighCapacity);
    }

    #[test]
    fn latte_tracks_mode_histogram() {
        let mut latte = LatteCc::new(cfg());
        latte.on_ep(&EpProbe::default());
        latte.on_ep(&EpProbe::default());
        assert_eq!(latte.report().total_eps(), 2);
        latte.on_kernel_start();
        assert_eq!(latte.report().total_eps(), 0);
    }

    #[test]
    fn hit_count_policy_ignores_latency() {
        let mut p = AdaptiveHitCount::new(cfg());
        p.sampling.live = [
            ModeSample { hits: 85, insertions: 15 },
            ModeSample { hits: 86, insertions: 14 },
            ModeSample { hits: 88, insertions: 12 },
        ];
        p.on_ep(&EpProbe::default());
        p.on_ep(&EpProbe::default()); // freeze + decide
        // Marginal capacity benefit, zero tolerance: LATTE-CC would pick
        // None (see latte_decides_by_tolerance) but hit-count picks HC.
        assert_eq!(p.selected, CompressionMode::HighCapacity);
    }

    #[test]
    fn cmp_policy_accounts_latency_but_not_tolerance() {
        let mut p = AdaptiveCmp::new(cfg());
        // Large counts so the EWMA halving keeps the ratios exact.
        p.sampling.live = [
            ModeSample { hits: 850, insertions: 150 },
            ModeSample { hits: 860, insertions: 140 },
            ModeSample { hits: 880, insertions: 120 },
        ];
        // Give it a probe with huge tolerance: must make no difference.
        let probe = EpProbe {
            avg_warps_available: 100.0,
            avg_exec_cycles_per_schedule: 1.0,
            ..EpProbe::default()
        };
        p.on_ep(&probe);
        p.on_ep(&probe);
        assert_eq!(p.selected, CompressionMode::None);
    }

    #[test]
    fn latte_learning_fills_use_dedicated_modes() {
        let mut latte = LatteCc::new(cfg());
        let line = CacheLine::from_u32_words(&(0..32).map(|i| 0x40 + i).collect::<Vec<_>>());
        let (algo, _) = latte.compress_fill(0, &line);
        assert_eq!(algo, CompressionAlgo::None);
        let (algo, c) = latte.compress_fill(1, &line);
        assert_eq!(algo, CompressionAlgo::Bdi);
        assert!(c.is_compressed());
        let (algo, _) = latte.compress_fill(2, &line);
        assert_eq!(algo, CompressionAlgo::Sc);
    }

    #[test]
    fn decode_errors_demote_to_uncompressed() {
        let mut latte = LatteCc::new(LatteConfig {
            decode_error_demotion_threshold: 3,
            ..cfg()
        });
        let line = CacheLine::from_u32_words(&(0..32).map(|i| 0x40 + i).collect::<Vec<_>>());
        // A dedicated low-latency set compresses while healthy.
        let (algo, _) = latte.compress_fill(1, &line);
        assert_eq!(algo, CompressionAlgo::Bdi);

        latte.on_decode_error(CompressionAlgo::Bdi);
        latte.on_decode_error(CompressionAlgo::Sc);
        assert!(!latte.is_demoted(), "below threshold");
        latte.on_decode_error(CompressionAlgo::Bdi);
        assert!(latte.is_demoted());
        assert_eq!(latte.decode_errors(), 3);
        assert_eq!(latte.selected_mode(), CompressionMode::None);

        // Demoted: everything stores raw, even dedicated sets, and EP
        // decisions cannot re-enable compression within this kernel.
        let (algo, c) = latte.compress_fill(1, &line);
        assert_eq!(algo, CompressionAlgo::None);
        assert!(!c.is_compressed());
        latte.sampling.frozen = [
            ModeSample { hits: 10, insertions: 90 },
            ModeSample { hits: 90, insertions: 10 },
            ModeSample { hits: 90, insertions: 10 },
        ];
        latte.on_ep(&EpProbe::default());
        assert_eq!(latte.selected_mode(), CompressionMode::None);

        // A new kernel gets a clean slate.
        latte.on_kernel_start();
        assert!(!latte.is_demoted());
        assert_eq!(latte.decode_errors(), 0);
        let (algo, _) = latte.compress_fill(1, &line);
        assert_eq!(algo, CompressionAlgo::Bdi);
    }

    #[test]
    fn latte_bpc_variant_uses_bpc() {
        let mut latte = LatteCc::new(LatteConfig {
            high_capacity: HighCapacityAlgo::Bpc,
            ..cfg()
        });
        let line = CacheLine::from_u32_words(&(0..32).map(|i| 0x40 + i * 2).collect::<Vec<_>>());
        let (algo, c) = latte.compress_fill(2, &line);
        assert_eq!(algo, CompressionAlgo::Bpc);
        assert!(c.is_compressed());
    }
}
