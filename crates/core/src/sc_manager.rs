//! Lifecycle management for the SC compressor's value-frequency table
//! (§IV-C2): the VFT is rebuilt periodically and stale SC-compressed lines
//! are invalidated whenever a new codebook takes effect.
//!
//! Deviation from the paper (recorded in DESIGN.md): the paper retrains
//! unconditionally during the final EP of every period. On value streams
//! with high churn (index arrays, pointers) that swaps one useless
//! dictionary for another *and* invalidates every SC-compressed line — a
//! refetch storm each period. This implementation scores the candidate
//! codebook against the incumbent on a held-out window of live fill lines
//! and swaps only when the candidate is materially better, which is both
//! hardware-plausible (shadow-table scoring) and statistically unbiased.

use latte_compress::{
    CacheLine, Compression, Compressor, Sc, ScCodebook, VftBuilder, VFT_COUNTER_MAX, VFT_ENTRIES,
};

/// Swap when the candidate encodes the held-out window in fewer than
/// `SWAP_NUM/SWAP_DEN` of the incumbent's bits.
const SWAP_NUM: u64 = 9;
const SWAP_DEN: u64 = 10;

#[derive(Debug, Clone, Default)]
enum Window {
    /// No training activity.
    #[default]
    Idle,
    /// Sampling fills into a fresh VFT.
    Training(VftBuilder),
    /// Comparing the candidate codebook against the incumbent on live
    /// fill lines.
    Scoring {
        candidate: ScCodebook,
        old_bits: u64,
        new_bits: u64,
    },
}

/// Drives SC training/retraining across experimental phases. Used both by
/// the Static-SC policy and by LATTE-CC's high-capacity mode.
///
/// # Example
///
/// ```
/// use latte_core::ScManager;
/// use latte_compress::CacheLine;
///
/// let mut sc = ScManager::new(10);
/// let hot = CacheLine::from_u32_words(&[7; 32]);
/// // During the first EP the manager trains; lines stay uncompressed.
/// sc.observe_fill(&hot);
/// assert!(!sc.compress(&hot).is_compressed());
/// // After the first EP completes, the codebook is live.
/// sc.on_ep_end();
/// assert!(sc.take_invalidation());
/// assert!(sc.compress(&hot).is_compressed());
/// ```
#[derive(Debug, Clone)]
pub struct ScManager {
    sc: Sc,
    window: Window,
    bootstrap_done: bool,
    eps_completed_in_period: u64,
    eps_per_period: u64,
    pending_invalidation: bool,
    rebuilds: u64,
}

impl ScManager {
    /// Creates a manager for periods of `eps_per_period` experimental
    /// phases (the paper uses 10).
    ///
    /// # Panics
    ///
    /// Panics if `eps_per_period < 2` (there must be room for a training
    /// EP and at least one compressing EP).
    #[must_use]
    pub fn new(eps_per_period: u64) -> ScManager {
        assert!(eps_per_period >= 2, "a period needs at least 2 EPs");
        ScManager {
            sc: Sc::untrained(),
            window: Window::Training(VftBuilder::new()),
            bootstrap_done: false,
            eps_completed_in_period: 0,
            eps_per_period,
            pending_invalidation: false,
            rebuilds: 0,
        }
    }

    /// Samples a line being inserted into the cache. Trains the VFT during
    /// a training window; scores codebooks during a scoring window.
    pub fn observe_fill(&mut self, line: &CacheLine) {
        match &mut self.window {
            Window::Idle => {}
            Window::Training(vft) => vft.observe_line(line),
            Window::Scoring {
                candidate,
                old_bits,
                new_bits,
            } => {
                for w in line.u32_words() {
                    *old_bits += u64::from(self.sc.codebook().cost_bits(w));
                    *new_bits += u64::from(candidate.cost_bits(w));
                }
            }
        }
    }

    /// Compresses a line against the current codebook.
    #[must_use]
    pub fn compress(&self, line: &CacheLine) -> Compression {
        self.sc.compress(line)
    }

    /// Size-only probe against the current codebook (the fill hot path;
    /// identical result to [`ScManager::compress`] without touching the
    /// encode machinery).
    #[must_use]
    pub fn probe(&self, line: &CacheLine) -> Compression {
        self.sc.probe(line)
    }

    /// The underlying SC compressor (latency/energy constants).
    #[must_use]
    pub fn sc(&self) -> &Sc {
        &self.sc
    }

    /// Advances the EP clock; must be called once per EP boundary.
    pub fn on_ep_end(&mut self) {
        self.eps_completed_in_period += 1;
        if !self.bootstrap_done {
            // §IV-C2: the VFT is built during the first EP of the first
            // period; codes go live immediately after (nothing to score
            // against).
            if self.eps_completed_in_period == 1 {
                if let Window::Training(vft) = std::mem::take(&mut self.window) {
                    if vft.is_empty() {
                        // Nothing observed yet; keep training.
                        self.window = Window::Training(vft);
                        return;
                    }
                    self.install(vft.build());
                    self.bootstrap_done = true;
                }
            }
            return;
        }
        if self.eps_completed_in_period == self.eps_per_period.saturating_sub(2).max(1) {
            // Train during the penultimate EP of the period.
            self.window = Window::Training(VftBuilder::new());
        } else if self.eps_completed_in_period == self.eps_per_period - 1 {
            // Score during the final EP.
            if let Window::Training(vft) = std::mem::take(&mut self.window) {
                if !vft.is_empty() {
                    self.window = Window::Scoring {
                        candidate: vft.build(),
                        old_bits: 0,
                        new_bits: 0,
                    };
                }
            }
        } else if self.eps_completed_in_period >= self.eps_per_period {
            if let Window::Scoring {
                candidate,
                old_bits,
                new_bits,
            } = std::mem::take(&mut self.window)
            {
                if !candidate.same_dictionary(self.sc.codebook())
                    && new_bits * SWAP_DEN < old_bits * SWAP_NUM
                {
                    self.install(candidate);
                }
            }
            self.eps_completed_in_period = 0;
        }
    }

    /// Must be called at kernel boundaries: restarts the current period
    /// (the codebook survives across kernels as the hardware table would).
    pub fn on_kernel_start(&mut self) {
        self.eps_completed_in_period = 0;
        if self.bootstrap_done {
            self.window = Window::Idle;
        }
    }

    /// True once per codebook swap: the caller must invalidate all
    /// SC-compressed lines (their encodings are stale).
    pub fn take_invalidation(&mut self) -> bool {
        std::mem::take(&mut self.pending_invalidation)
    }

    /// Number of codebook installs so far (including the bootstrap).
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    fn install(&mut self, codebook: ScCodebook) {
        self.sc.set_codebook(codebook);
        self.pending_invalidation = true;
        self.rebuilds += 1;
    }

    /// Verifies the manager's dictionary and period-clock invariants
    /// without panicking: the period clock stays inside the period once
    /// bootstrapped, a live codebook implies at least one recorded
    /// rebuild (and vice versa), a pending invalidation can only follow a
    /// rebuild, the training VFT respects its hardware capacity and
    /// counter saturation bounds, and the installed codebook fits the
    /// VFT. Called from the shadow-verification checkpoints via
    /// `L1CompressionPolicy::validate`.
    ///
    /// The VFT check reports *how many* counters are out of bounds — an
    /// order-independent aggregate over the hash table — never which.
    ///
    /// # Errors
    ///
    /// Returns `Err` describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.eps_per_period < 2 {
            return Err(format!(
                "SC period of {} EPs cannot hold training + compressing phases",
                self.eps_per_period
            ));
        }
        if self.bootstrap_done && self.eps_completed_in_period >= self.eps_per_period {
            return Err(format!(
                "SC period clock at {} of {} EPs (missed reset)",
                self.eps_completed_in_period, self.eps_per_period
            ));
        }
        if self.bootstrap_done != (self.rebuilds >= 1) {
            return Err(format!(
                "SC bootstrap flag ({}) disagrees with rebuild count ({})",
                self.bootstrap_done, self.rebuilds
            ));
        }
        if self.pending_invalidation && self.rebuilds == 0 {
            return Err("SC invalidation pending without any codebook rebuild".to_owned());
        }
        if let Window::Training(vft) = &self.window {
            if vft.len() > VFT_ENTRIES {
                return Err(format!(
                    "VFT tracks {} values, hardware capacity {VFT_ENTRIES}",
                    vft.len()
                ));
            }
            let out_of_bounds = vft
                .iter_counts()
                .filter(|&(_, c)| c == 0 || c > VFT_COUNTER_MAX)
                .count();
            if out_of_bounds > 0 {
                return Err(format!(
                    "{out_of_bounds} VFT counters outside 1..={VFT_COUNTER_MAX}"
                ));
            }
        }
        if self.sc.codebook().len() > VFT_ENTRIES {
            return Err(format!(
                "SC codebook holds {} symbols, VFT capacity {VFT_ENTRIES}",
                self.sc.codebook().len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_line() -> CacheLine {
        CacheLine::from_u32_words(&(0..32).map(|i| i % 4).collect::<Vec<_>>())
    }

    fn churn_line(i: u32) -> CacheLine {
        CacheLine::from_u32_words(&(0..32).map(|w| 0x5000_0000 + i * 64 + w).collect::<Vec<_>>())
    }

    #[test]
    fn validate_holds_across_a_full_period() {
        let mut sc = ScManager::new(4);
        assert_eq!(sc.validate(), Ok(()));
        for ep in 0..20 {
            for i in 0..8 {
                sc.observe_fill(&churn_line(ep * 8 + i));
            }
            sc.on_ep_end();
            assert_eq!(sc.validate(), Ok(()), "after EP {ep}");
            let _ = sc.take_invalidation();
        }
        sc.on_kernel_start();
        assert_eq!(sc.validate(), Ok(()));
    }

    #[test]
    fn validate_flags_corrupted_period_clock() {
        let mut sc = ScManager::new(4);
        sc.observe_fill(&hot_line());
        sc.on_ep_end(); // bootstrap
        sc.eps_completed_in_period = 99;
        let err = sc.validate().expect_err("period clock 99/4 must fail");
        assert!(err.contains("period clock"), "{err}");
    }

    #[test]
    fn validate_flags_inconsistent_bootstrap_state() {
        let mut sc = ScManager::new(4);
        sc.bootstrap_done = true; // no rebuild recorded
        let err = sc.validate().expect_err("bootstrap without rebuild must fail");
        assert!(err.contains("rebuild count"), "{err}");
    }

    #[test]
    fn bootstrap_after_first_ep() {
        let mut m = ScManager::new(10);
        for _ in 0..50 {
            m.observe_fill(&hot_line());
        }
        assert!(!m.compress(&hot_line()).is_compressed());
        m.on_ep_end();
        assert!(m.take_invalidation());
        assert!(!m.take_invalidation(), "invalidation is one-shot");
        assert!(m.compress(&hot_line()).is_compressed());
        assert_eq!(m.rebuilds(), 1);
    }

    #[test]
    fn stationary_stream_never_reswaps() {
        let mut m = ScManager::new(4);
        m.observe_fill(&hot_line());
        m.on_ep_end(); // bootstrap
        let _ = m.take_invalidation();
        // Run several periods of the same value stream: the candidate is
        // never materially better, so no swap and no invalidation.
        for _ in 0..12 {
            for _ in 0..8 {
                m.observe_fill(&hot_line());
            }
            m.on_ep_end();
        }
        assert_eq!(m.rebuilds(), 1);
        assert!(!m.take_invalidation());
    }

    #[test]
    fn churning_stream_does_not_thrash() {
        // Every line distinct: no codebook generalises, so the candidate
        // never beats the incumbent on held-out data and the manager must
        // not swap-and-invalidate every period.
        let mut m = ScManager::new(4);
        let mut i = 0;
        let mut feed = |m: &mut ScManager, n: u32| {
            for _ in 0..n {
                m.observe_fill(&churn_line(i));
                i += 1;
            }
        };
        feed(&mut m, 30);
        m.on_ep_end(); // bootstrap
        let _ = m.take_invalidation();
        for _ in 0..16 {
            feed(&mut m, 30);
            m.on_ep_end();
        }
        assert_eq!(m.rebuilds(), 1, "churn must not cause repeated swaps");
    }

    #[test]
    fn distribution_shift_triggers_swap() {
        let mut m = ScManager::new(4);
        m.observe_fill(&hot_line());
        m.on_ep_end(); // bootstrap on the old distribution (period clock: 1)
        let _ = m.take_invalidation();
        let new_line = CacheLine::from_u32_words(&[0xdead_beef; 32]);
        // Feed the new distribution through at least one full period so a
        // train -> score -> swap cycle sees it.
        for _ in 0..12 {
            for _ in 0..20 {
                m.observe_fill(&new_line);
            }
            m.on_ep_end();
        }
        assert!(m.rebuilds() >= 2, "shifted distribution must swap");
        assert!(m.compress(&new_line).is_compressed());
    }

    #[test]
    fn no_rebuild_from_empty_vft() {
        let mut m = ScManager::new(4);
        m.on_ep_end(); // bootstrap window saw nothing
        assert!(!m.take_invalidation());
        assert_eq!(m.rebuilds(), 0);
    }

    #[test]
    fn kernel_start_resets_period_clock() {
        let mut m = ScManager::new(4);
        m.observe_fill(&hot_line());
        m.on_ep_end();
        let _ = m.take_invalidation();
        m.on_ep_end();
        m.on_kernel_start();
        m.on_ep_end();
        m.on_ep_end();
        assert_eq!(m.rebuilds(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_period_panics() {
        let _ = ScManager::new(1);
    }
}
