//! A generalised, N-mode LATTE-CC — the extension §V-E gestures at:
//! "LATTE-CC is agnostic to the underlying compression algorithms and can
//! be augmented with other compression hardware as well."
//!
//! [`LatteCcMulti`] arbitrates between an arbitrary list of compression
//! options (e.g. no-compression, BDI, BPC *and* SC simultaneously), using
//! the same learning machinery as the 3-mode controller: dedicated
//! sampling sets per option, per-period hit/insertion counters, and
//! AMAT_GPU decisions under the measured latency tolerance.

use crate::amat::{amat_gpu, ModeSample};
use crate::sc_manager::ScManager;
use latte_compress::{Bdi, Bpc, CacheLine, Compression, CompressionAlgo, Compressor};
use latte_gpusim::{AccessEvent, EpProbe, L1CompressionPolicy, PolicyReport};

/// One compression option the multi-mode controller can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeOption {
    /// Store lines raw.
    None,
    /// Base-Delta-Immediate (2-cycle decompression).
    Bdi,
    /// Bit-plane compression (11-cycle decompression).
    Bpc,
    /// Statistical compression (14-cycle decompression, trained VFT).
    Sc,
}

impl ModeOption {
    /// The algorithm tag lines carry under this option.
    #[must_use]
    pub fn algo(self) -> CompressionAlgo {
        match self {
            ModeOption::None => CompressionAlgo::None,
            ModeOption::Bdi => CompressionAlgo::Bdi,
            ModeOption::Bpc => CompressionAlgo::Bpc,
            ModeOption::Sc => CompressionAlgo::Sc,
        }
    }
}

/// Configuration for [`LatteCcMulti`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiConfig {
    /// The options to arbitrate between. Must contain at least two and at
    /// most `num_l1_sets / (2 * dedicated_sets_per_mode)` options.
    pub options: Vec<ModeOption>,
    /// EPs per period (paper: 10).
    pub eps_per_period: u64,
    /// Number of L1 sets.
    pub num_l1_sets: usize,
    /// Dedicated sets per option.
    pub dedicated_sets_per_mode: usize,
    /// Base L1 hit latency (must match the GPU config).
    pub l1_base_hit_latency: f64,
    /// Effective miss latency for the AMAT estimate.
    pub miss_latency: f64,
    /// Tolerance calibration scale.
    pub tolerance_scale: f64,
}

impl MultiConfig {
    /// The four-mode configuration: None / BDI / BPC / SC.
    #[must_use]
    pub fn four_mode() -> MultiConfig {
        let base = crate::LatteConfig::paper();
        MultiConfig {
            options: vec![
                ModeOption::None,
                ModeOption::Bdi,
                ModeOption::Bpc,
                ModeOption::Sc,
            ],
            eps_per_period: base.eps_per_period,
            num_l1_sets: base.num_l1_sets,
            dedicated_sets_per_mode: base.dedicated_sets_per_mode,
            l1_base_hit_latency: base.l1_base_hit_latency,
            miss_latency: base.miss_latency,
            tolerance_scale: base.tolerance_scale,
        }
    }
}

/// The generalised multi-mode LATTE-CC controller.
///
/// # Example
///
/// ```
/// use latte_core::{LatteCcMulti, MultiConfig};
/// use latte_gpusim::{Gpu, GpuConfig};
/// use latte_gpusim::testing::StridedKernel;
///
/// let mut gpu = Gpu::new(&GpuConfig::small(), |_| {
///     Box::new(LatteCcMulti::new(MultiConfig::four_mode()))
/// });
/// let stats = gpu.run_kernel(&StridedKernel::new(8, 256, 200));
/// assert!(stats.instructions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LatteCcMulti {
    cfg: MultiConfig,
    stride: usize,
    bdi: Bdi,
    bpc: Bpc,
    sc: ScManager,
    live: Vec<ModeSample>,
    frozen: Vec<ModeSample>,
    ep_in_period: u64,
    tolerance: f64,
    selected: usize,
    eps_in_option: Vec<u64>,
}

impl LatteCcMulti {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two options are configured or the cache has
    /// too few sets to dedicate samples to every option.
    #[must_use]
    pub fn new(cfg: MultiConfig) -> LatteCcMulti {
        assert!(cfg.options.len() >= 2, "arbitration needs at least two options");
        assert!(cfg.dedicated_sets_per_mode >= 1);
        let needed = cfg.options.len() * cfg.dedicated_sets_per_mode;
        assert!(
            cfg.num_l1_sets >= 2 * needed,
            "{} sets cannot host {} dedicated sets",
            cfg.num_l1_sets,
            needed
        );
        let stride = cfg.num_l1_sets / cfg.dedicated_sets_per_mode;
        let n = cfg.options.len();
        let sc = ScManager::new(cfg.eps_per_period);
        LatteCcMulti {
            cfg,
            stride,
            bdi: Bdi::new(),
            bpc: Bpc::new(),
            sc,
            live: vec![ModeSample::default(); n],
            frozen: vec![ModeSample::default(); n],
            ep_in_period: 0,
            tolerance: 0.0,
            selected: 0,
            eps_in_option: vec![0; n],
        }
    }

    /// The option currently selected for follower sets.
    #[must_use]
    pub fn selected_option(&self) -> ModeOption {
        self.cfg.options[self.selected]
    }

    /// EPs spent in each option since the last kernel start.
    #[must_use]
    pub fn eps_in_option(&self) -> &[u64] {
        &self.eps_in_option
    }

    fn dedicated_option(&self, set: usize) -> Option<usize> {
        let slot = set % self.stride;
        (slot < self.cfg.options.len()).then_some(slot)
    }

    fn hit_latency(&self, idx: usize) -> f64 {
        let algo = self.cfg.options[idx].algo();
        if algo == CompressionAlgo::None {
            self.cfg.l1_base_hit_latency
        } else {
            self.cfg.l1_base_hit_latency + algo.decompression_latency() as f64 + 1.0
        }
    }

    fn compress_with(&mut self, idx: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        match self.cfg.options[idx] {
            ModeOption::None => (CompressionAlgo::None, Compression::UNCOMPRESSED),
            ModeOption::Bdi => (CompressionAlgo::Bdi, self.bdi.probe(line)),
            ModeOption::Bpc => (CompressionAlgo::Bpc, self.bpc.probe(line)),
            ModeOption::Sc => (CompressionAlgo::Sc, self.sc.probe(line)),
        }
    }

    fn decide(&mut self) {
        let mut best = 0;
        let mut best_amat = f64::INFINITY;
        for idx in 0..self.cfg.options.len() {
            let amat = amat_gpu(
                self.frozen[idx],
                self.hit_latency(idx),
                self.cfg.miss_latency,
                self.tolerance,
            );
            if amat < best_amat {
                best_amat = amat;
                best = idx;
            }
        }
        self.selected = best;
    }
}

impl L1CompressionPolicy for LatteCcMulti {
    fn name(&self) -> &'static str {
        "LATTE-CC-Multi"
    }

    fn compress_fill(&mut self, set: usize, line: &CacheLine) -> (CompressionAlgo, Compression) {
        self.sc.observe_fill(line);
        match self.dedicated_option(set) {
            Some(idx) => {
                if self.ep_in_period <= 1 {
                    self.live[idx].insertions += 1;
                }
                self.compress_with(idx, line)
            }
            None => self.compress_with(self.selected, line),
        }
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        if ev.hit && self.ep_in_period <= 1 {
            if let Some(idx) = self.dedicated_option(ev.set) {
                self.live[idx].hits += 1;
            }
        }
    }

    fn on_ep(&mut self, probe: &EpProbe) {
        self.tolerance = probe.latency_tolerance() * self.cfg.tolerance_scale;
        self.ep_in_period += 1;
        if self.ep_in_period == 2 {
            for (frozen, live) in self.frozen.iter_mut().zip(&self.live) {
                frozen.hits = (frozen.hits + live.hits).div_ceil(2);
                frozen.insertions = (frozen.insertions + live.insertions).div_ceil(2);
            }
        } else if self.ep_in_period >= self.cfg.eps_per_period {
            self.ep_in_period = 0;
            self.live.iter_mut().for_each(|m| *m = ModeSample::default());
        }
        self.sc.on_ep_end();
        self.decide();
        self.eps_in_option[self.selected] += 1;
    }

    fn on_kernel_start(&mut self) {
        self.ep_in_period = 0;
        self.live.iter_mut().for_each(|m| *m = ModeSample::default());
        self.eps_in_option.iter_mut().for_each(|e| *e = 0);
        self.sc.on_kernel_start();
    }

    fn pending_invalidation(&mut self) -> Option<CompressionAlgo> {
        self.sc.take_invalidation().then_some(CompressionAlgo::Sc)
    }

    fn report(&self) -> PolicyReport {
        // Fold the option histogram into the 3-bucket report: None, the
        // low-latency option (BDI), and everything else as high-capacity.
        let mut eps_in_mode = [0u64; 3];
        for (idx, &eps) in self.eps_in_option.iter().enumerate() {
            let bucket = match self.cfg.options[idx] {
                ModeOption::None => 0,
                ModeOption::Bdi => 1,
                ModeOption::Bpc | ModeOption::Sc => 2,
            };
            eps_in_mode[bucket] += eps;
        }
        PolicyReport { eps_in_mode }
    }

    fn current_mode_index(&self) -> Option<usize> {
        Some(match self.cfg.options[self.selected] {
            ModeOption::None => 0,
            ModeOption::Bdi => 1,
            ModeOption::Bpc | ModeOption::Sc => 2,
        })
    }

    fn validate(&self) -> Result<(), String> {
        if self.selected >= self.cfg.options.len() {
            return Err(format!(
                "selected option {} out of range ({} options)",
                self.selected,
                self.cfg.options.len()
            ));
        }
        self.sc.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MultiConfig {
        MultiConfig::four_mode()
    }

    #[test]
    fn four_mode_roles_cover_all_options() {
        let m = LatteCcMulti::new(cfg());
        // Sets 0..3 of each 16-set stride are dedicated (2 dedicated/mode
        // over 32 sets -> stride 16).
        assert_eq!(m.dedicated_option(0), Some(0));
        assert_eq!(m.dedicated_option(1), Some(1));
        assert_eq!(m.dedicated_option(2), Some(2));
        assert_eq!(m.dedicated_option(3), Some(3));
        assert_eq!(m.dedicated_option(4), None);
        assert_eq!(m.dedicated_option(16), Some(0));
    }

    #[test]
    fn learning_fills_use_each_algorithm() {
        let mut m = LatteCcMulti::new(cfg());
        let line = CacheLine::from_u32_words(&(0..32).map(|i| 0x40 + i * 2).collect::<Vec<_>>());
        assert_eq!(m.compress_fill(0, &line).0, CompressionAlgo::None);
        assert_eq!(m.compress_fill(1, &line).0, CompressionAlgo::Bdi);
        assert_eq!(m.compress_fill(2, &line).0, CompressionAlgo::Bpc);
        assert_eq!(m.compress_fill(3, &line).0, CompressionAlgo::Sc);
    }

    #[test]
    fn decision_prefers_cheap_modes_without_capacity_evidence() {
        let mut m = LatteCcMulti::new(cfg());
        // Identical samples for every option: the no-compression option
        // (lowest hit latency) must win.
        m.frozen = vec![ModeSample { hits: 50, insertions: 10 }; 4];
        m.tolerance = 0.0;
        m.decide();
        assert_eq!(m.selected_option(), ModeOption::None);
    }

    #[test]
    fn decision_takes_capacity_when_tolerant() {
        let mut m = LatteCcMulti::new(cfg());
        m.frozen = vec![
            ModeSample { hits: 500, insertions: 500 },
            ModeSample { hits: 550, insertions: 450 },
            ModeSample { hits: 700, insertions: 300 },
            ModeSample { hits: 900, insertions: 100 },
        ];
        m.tolerance = 30.0; // everything hidden
        m.decide();
        assert_eq!(m.selected_option(), ModeOption::Sc);
        // Intolerant pipeline with SC's capacity edge shrunk: BPC or
        // cheaper should win over SC.
        m.frozen[3] = ModeSample { hits: 710, insertions: 290 };
        m.tolerance = 0.0;
        m.decide();
        assert_ne!(m.selected_option(), ModeOption::Sc);
    }

    #[test]
    fn report_folds_into_three_buckets() {
        let mut m = LatteCcMulti::new(cfg());
        let probe = EpProbe::default();
        for _ in 0..6 {
            m.on_ep(&probe);
        }
        assert_eq!(m.report().total_eps(), 6);
    }

    #[test]
    #[should_panic(expected = "at least two options")]
    fn single_option_panics() {
        let mut c = cfg();
        c.options = vec![ModeOption::Bdi];
        let _ = LatteCcMulti::new(c);
    }
}
