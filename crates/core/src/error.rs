//! The typed error model of the simulation stack.
//!
//! Low-level failures are typed where they occur —
//! [`latte_compress::DecodeError`] for corrupt compressed payloads,
//! `Result<(), String>` from the cache's structural audit — and this
//! module folds them into one [`SimError`] so callers (the bench runner,
//! experiment drivers) can propagate a single error type instead of
//! panicking.

use latte_compress::DecodeError;
use latte_gpusim::TerminationReason;

/// An error surfaced by the simulation stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A stored compressed line failed to decompress (detected
    /// corruption). Recoverable: the access re-fetches from the L2.
    Decode(DecodeError),
    /// A structural audit of simulator state failed; statistics produced
    /// after this point are suspect.
    CorruptState {
        /// Human-readable description of the first violation found.
        detail: String,
    },
    /// A kernel stopped before completing its work.
    EarlyTermination(TerminationReason),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Decode(e) => write!(f, "decode failure: {e}"),
            SimError::CorruptState { detail } => {
                write!(f, "corrupt simulator state: {detail}")
            }
            SimError::EarlyTermination(reason) => {
                write!(f, "kernel stopped early: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> SimError {
        SimError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_decode_errors_with_source() {
        let decode = DecodeError::Truncated {
            needed: 8,
            remaining: 3,
        };
        let err: SimError = decode.into();
        assert_eq!(err, SimError::Decode(decode));
        assert!(err.to_string().contains("decode failure"));
        let source = std::error::Error::source(&err);
        assert!(source.is_some(), "decode errors must chain as source");
    }

    #[test]
    fn displays_each_variant() {
        let corrupt = SimError::CorruptState {
            detail: "set 3 exceeds tag budget".into(),
        };
        assert!(corrupt.to_string().contains("set 3"));
        assert!(std::error::Error::source(&corrupt).is_none());
        let early = SimError::EarlyTermination(TerminationReason::Deadlock);
        assert!(early.to_string().contains("deadlock"));
    }
}
