//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! crate, vendored so the workspace builds in offline environments where
//! the crates-io registry is unreachable.
//!
//! Benchmarks run a short calibration pass, then time a fixed batch and
//! report mean wall-clock time per iteration. There is no statistical
//! analysis, warm-up configuration, or HTML report — just enough to keep
//! `cargo bench` (and `cargo test --benches`) building and producing
//! useful numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Requested measurement time per benchmark (approximate).
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // CRITERION_QUICK=1 shrinks the measurement window for smoke
        // runs (CI builds the benches and checks they execute; the
        // numbers themselves are not archived from quick mode).
        let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
        Criterion {
            measurement: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measurement, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement: self.measurement,
            _parent: self,
        }
    }

    /// Upstream parses CLI args here; we accept and ignore them.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs any queued benchmarks (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; we only keep the call site valid.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to `bench_function`; call `iter`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for this bencher's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, measurement: Duration, f: &mut F) {
    // Calibrate: run one iteration to estimate cost, then size the batch
    // to roughly fill the measurement window (capped for slow routines).
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (measurement.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let mean = bench.elapsed.as_nanos() as f64 / iters as f64;
    println!("{label:<48} {:>12.1} ns/iter ({iters} iters)", mean);
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
