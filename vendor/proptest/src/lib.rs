//! A minimal, dependency-free, API-compatible subset of the `proptest`
//! crate, vendored so the workspace builds in offline environments where
//! the crates-io registry is unreachable.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs and
//!   machines. There is no persistence file and no `PROPTEST_*` env vars.
//! * **Greedy shrinking**: when a case fails, [`strategy::Strategy::shrink`]
//!   candidates (most aggressive first — integer ranges binary-search
//!   toward their start, vectors truncate before shrinking elements,
//!   tuples shrink per component) are retried until no candidate still
//!   fails, then the minimised case is re-run uncaught so the ordinary
//!   assertion failure reports it. `prop_map` values do not shrink (the
//!   mapping is not invertible).
//! * Only the strategy combinators this workspace uses are implemented
//!   (`any`, ranges, tuples, `prop_map`, `prop_oneof!`, `Just`,
//!   `prop::collection::vec`).

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A small deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in [0, bound). `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }
    }

    /// FNV-1a, used to derive per-test seeds from test names.
    #[must_use]
    pub fn fnv1a(name: &str) -> u64 {
        name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Shrink candidates for a failing `value`, ordered most
        /// aggressive first. An empty vector means the value is minimal
        /// (or the strategy cannot shrink, e.g. after `prop_map`).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Pins a property closure's argument type to `S::Value` (the
    /// `proptest!` macro cannot name that type itself).
    #[doc(hidden)]
    pub fn bind_case_fn<S: Strategy, F: Fn(&S::Value)>(_strat: &S, f: F) -> F {
        f
    }

    /// Greedily minimises `failing` against `test` (`test` returns `true`
    /// when the case passes): each round takes the first shrink candidate
    /// that still fails, until no candidate fails or a step cap is hit.
    /// Returns the minimised value and the number of accepted steps.
    pub fn minimize<S: Strategy>(
        strat: &S,
        mut failing: S::Value,
        test: impl Fn(&S::Value) -> bool,
    ) -> (S::Value, u32) {
        let mut steps = 0u32;
        'outer: while steps < 1000 {
            for candidate in strat.shrink(&failing) {
                if !test(&candidate) {
                    failing = candidate;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (failing, steps)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
        fn dyn_shrink(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.dyn_shrink(value)
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Creates a union; weights must sum to a nonzero value.
        #[must_use]
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = options.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs a nonzero total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights exhausted")
        }

        /// The generating branch is not recorded, so every option is
        /// asked for candidates; each candidate is a valid value of
        /// *some* branch, which is all the union promises.
        fn shrink(&self, value: &T) -> Vec<T> {
            self.options
                .iter()
                .flat_map(|(_, s)| s.shrink(value))
                .collect()
        }
    }

    /// Candidates between `start` and `value`, binary-searching toward
    /// `start`: `start` itself first, then successive halvings of the
    /// remaining distance, ending at `value - 1`.
    fn shrink_toward(start: i128, value: i128) -> Vec<i128> {
        let mut out = Vec::new();
        let mut d = value - start;
        while d > 0 {
            out.push(value - d);
            d /= 2;
        }
        out
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (*self.start() as i128 + off) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            // Start, then the midpoint; the step cap in `minimize` bounds
            // the otherwise unbounded float halving.
            [self.start, self.start + (value - self.start) / 2.0]
                .into_iter()
                .filter(|c| c.is_finite() && *c < *value)
                .collect()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
        fn shrink(&self, value: &f32) -> Vec<f32> {
            [self.start, self.start + (value - self.start) / 2.0]
                .into_iter()
                .filter(|c| c.is_finite() && *c < *value)
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Length shrinks first (most aggressive): down to the
            // minimum, then halfway there, then one element shorter.
            let min = self.size.min;
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 > half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Then per-element shrinks at the same length.
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors upstream's `prop` module namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let seed = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // All arguments fold into one tuple strategy so a failing
            // case shrinks across every argument at once.
            let __strat = ($(($strat),)+);
            let __run = $crate::strategy::bind_case_fn(&__strat, |__case| {
                let ($($arg,)+) = ::std::clone::Clone::clone(__case);
                $body
            });
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    seed ^ (u64::from(case)).wrapping_mul(0x2545_f491_4f6c_dd1d),
                );
                let __value =
                    $crate::strategy::Strategy::generate(&__strat, &mut rng);
                let __passed = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { __run(&__value); }),
                ).is_ok();
                if !__passed {
                    // Shrink quietly (candidate re-runs would otherwise
                    // each print a panic), then re-run the minimised
                    // case uncaught so the real assertion reports it.
                    let __hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                    let (__min, __steps) = $crate::strategy::minimize(
                        &__strat,
                        __value,
                        |__c| ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(|| { __run(__c); }),
                        ).is_ok(),
                    );
                    ::std::panic::set_hook(__hook);
                    eprintln!(
                        "proptest {}: case {} failed; minimised after {} shrink step(s): {:?}",
                        stringify!($name), case, __steps, __min,
                    );
                    __run(&__min);
                    unreachable!("the minimised case no longer fails");
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property. Expands to a plain `assert!`;
/// the runner catches the panic and shrinks the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            3 => (0u8..10).prop_map(|x| x as u32),
            1 => Just(99u32),
        ]) {
            prop_assert!(v < 10 || v == 99);
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 8);
        let a = strat.generate(&mut TestRng::from_seed(42));
        let b = strat.generate(&mut TestRng::from_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn int_range_shrinks_toward_start_most_aggressive_first() {
        use crate::strategy::Strategy;
        let candidates = (3u32..17).shrink(&16);
        assert_eq!(candidates.first(), Some(&3), "start comes first");
        assert_eq!(candidates.last(), Some(&15), "one step back comes last");
        assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        assert!(candidates.iter().all(|&c| (3..16).contains(&c)));
        assert!((3u32..17).shrink(&3).is_empty(), "the start is minimal");
    }

    #[test]
    fn vec_shrinks_length_before_elements() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u8..10, 1..5);
        let candidates = strat.shrink(&vec![7, 8, 9]);
        assert_eq!(candidates[0], vec![7], "minimum length first");
        assert!(
            candidates.iter().any(|c| c.len() == 3 && c[0] < 7),
            "per-element shrinks at the original length"
        );
        assert!(
            candidates.iter().all(|c| !c.is_empty()),
            "candidates respect the minimum length"
        );
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        use crate::strategy::Strategy;
        let strat = (0u32..100, 0u32..100);
        for (a, b) in strat.shrink(&(40, 50)) {
            assert!(
                (a == 40) != (b == 50),
                "exactly one component moves per candidate: ({a}, {b})"
            );
        }
    }

    #[test]
    fn minimize_finds_the_boundary() {
        let strat = 0u64..1000;
        // Property "x < 10" first fails at 10: greedy binary-search
        // shrinking from any failing value must land exactly there.
        let (min, steps) = crate::strategy::minimize(&strat, 977, |&x| x < 10);
        assert_eq!(min, 10);
        assert!(steps > 0);
    }

    #[test]
    fn boxed_strategy_preserves_shrinking() {
        use crate::strategy::Strategy;
        let strat = (5u64..500).boxed();
        assert_eq!(strat.shrink(&6), vec![5]);
        let (min, _) = crate::strategy::minimize(&strat, 499, |&x| x < 20);
        assert_eq!(min, 20);
    }

    // A deliberately failing property, *not* annotated `#[test]`: the
    // harness test below runs it under `catch_unwind` to check the
    // end-to-end shrink-then-report path.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn failing_property(x in 0u64..1000, pad in prop::collection::vec(any::<u8>(), 0..4)) {
            let _ = pad;
            assert!(x < 10, "x too big: {x}");
        }
    }

    #[test]
    fn runner_reports_the_minimised_case() {
        let result = std::panic::catch_unwind(failing_property);
        let payload = result.expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(
            message, "x too big: 10",
            "the re-raised panic must carry the fully minimised case"
        );
    }
}
