//! Define a custom GPU kernel against the simulator's public API and see
//! how the compression policies handle it.
//!
//! The kernel below models a two-phase image filter: a streaming pass over
//! a large frame (no reuse) followed by a histogram pass over a small,
//! heavily-reused table of quantised values.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use latte_cache::LineAddr;
use latte_compress::CacheLine;
use latte_core::{LatteCc, LatteConfig, StaticBdi, StaticSc};
use latte_gpusim::{
    Gpu, GpuConfig, Kernel, L1CompressionPolicy, Op, OpStream, UncompressedPolicy,
};

/// A hand-written kernel: 16 warps per SM, each streaming 600 frame lines
/// then hammering a 160-line histogram 900 times.
struct ImageFilterKernel;

struct FilterStream {
    sm: u64,
    warp: u64,
    step: u32,
}

const FRAME_REGION: u64 = 0;
const HISTOGRAM_REGION: u64 = 1 << 24;
const STREAM_STEPS: u32 = 600;
const HISTOGRAM_STEPS: u32 = 900;

impl OpStream for FilterStream {
    fn next_op(&mut self) -> Op {
        let step = self.step;
        self.step += 1;
        let base = self.sm << 32;
        if step < STREAM_STEPS {
            // Phase 1: disjoint streaming over the frame.
            let line = base | FRAME_REGION | (u64::from(step) * 16 + self.warp);
            Op::Load { addr: line * 128 }
        } else if step == STREAM_STEPS {
            Op::Barrier
        } else if step <= STREAM_STEPS + HISTOGRAM_STEPS {
            // Phase 2: shared histogram bins, pseudo-random reuse.
            let i = (u64::from(step) * 2654435761) ^ (self.warp << 17);
            let line = base | HISTOGRAM_REGION | (i % 160);
            Op::Load { addr: line * 128 }
        } else {
            Op::Exit
        }
    }
}

impl Kernel for ImageFilterKernel {
    fn name(&self) -> &str {
        "image-filter"
    }

    fn warps_on_sm(&self, _sm: usize) -> usize {
        16
    }

    fn warp_program(&self, sm: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(FilterStream {
            sm: sm as u64,
            warp: warp as u64,
            step: 0,
        })
    }

    fn line_data(&self, addr: LineAddr) -> CacheLine {
        if addr.line_number() & HISTOGRAM_REGION != 0 {
            // Histogram bins: small counters — highly compressible.
            let words: Vec<u32> = (0..32)
                .map(|i| ((addr.line_number() as u32).wrapping_mul(31) ^ i) % 256)
                .collect();
            CacheLine::from_u32_words(&words)
        } else {
            // Frame pixels: packed 8-bit channels with real variance.
            let mut bytes = [0u8; CacheLine::SIZE_BYTES];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = (addr.line_number() as u8)
                    .wrapping_mul(37)
                    .wrapping_add(i as u8)
                    .rotate_left(3);
            }
            CacheLine::from_bytes(bytes)
        }
    }
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn L1CompressionPolicy>>;

fn main() {
    let config = GpuConfig::small();
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("Baseline", Box::new(|| Box::new(UncompressedPolicy))),
        ("Static-BDI", Box::new(|| Box::new(StaticBdi::new()))),
        ("Static-SC", Box::new(|| Box::new(StaticSc::new()))),
        ("LATTE-CC", Box::new(|| Box::new(LatteCc::new(LatteConfig::paper())))),
    ];
    println!("custom kernel: streaming frame pass + hot histogram pass\n");
    println!("{:12} {:>10} {:>8} {:>8}", "policy", "cycles", "IPC", "hit%");
    let mut baseline_cycles = None;
    for (name, make) in policies {
        let mut gpu = Gpu::new(&config, |_| make());
        let stats = gpu.run_kernel(&ImageFilterKernel);
        let speedup = baseline_cycles
            .get_or_insert(stats.cycles)
            .to_owned() as f64
            / stats.cycles as f64;
        println!(
            "{:12} {:>10} {:>8.2} {:>7.1}%   ({speedup:.3}x)",
            name,
            stats.cycles,
            stats.ipc(),
            stats.l1.hit_rate() * 100.0
        );
    }
}
