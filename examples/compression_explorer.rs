//! Compression explorer: see how each of the five cache compression
//! algorithms handles characteristic GPU data patterns — the Fig 2 / §II-A
//! story in miniature.
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use latte_cache::LineAddr;
use latte_compress::{
    Bdi, Bpc, CacheLine, Compressor, CpackZ, Fpc, Sc, VftBuilder,
};
use latte_workloads::ValueProfile;

fn main() {
    let patterns: Vec<(&str, ValueProfile)> = vec![
        ("zero-initialised array", ValueProfile::Zeros),
        ("small integers (graph distances)", ValueProfile::SmallInts { max: 1024 }),
        ("pointer lists (adjacency)", ValueProfile::Pointers),
        (
            "index arrays (CSR columns)",
            ValueProfile::Indices {
                stride: 1,
                noise_bits: 2,
            },
        ),
        (
            "quantised floats (k-means centroids)",
            ValueProfile::HotFloats { alphabet: 64 },
        ),
        ("random floats (sensor data)", ValueProfile::RandomFloats),
        ("ASCII text (word count)", ValueProfile::Text),
    ];

    println!(
        "{:38} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "pattern", "BDI", "FPC", "CPACK", "BPC", "SC"
    );
    for (name, profile) in patterns {
        let lines: Vec<CacheLine> = (0..256)
            .map(|i| profile.line(LineAddr::new(i), 42))
            .collect();
        // SC needs training: sample the stream into a value-frequency
        // table first, exactly as the hardware VFT would.
        let mut vft = VftBuilder::new();
        for l in &lines {
            vft.observe_line(l);
        }
        let sc = Sc::new(vft.build());
        let algos: [&dyn Compressor; 5] =
            [&Bdi::new(), &Fpc::new(), &CpackZ::new(), &Bpc::new(), &sc];
        print!("{name:38}");
        for algo in algos {
            let stored: usize = lines.iter().map(|l| algo.compress(l).size_bytes()).sum();
            let ratio = (lines.len() * CacheLine::SIZE_BYTES) as f64 / stored as f64;
            print!(" {ratio:>6.2}x");
        }
        println!();
    }
    println!(
        "\nDecompression latencies (cycles): BDI 2, FPC 5, CPACK-Z 8, BPC 11, SC 14 (Table I)."
    );
    println!("Spatial-locality data favours BDI/BPC; temporal-locality data favours SC.");
}
