//! Quickstart: run one GPGPU benchmark under the uncompressed baseline and
//! under LATTE-CC, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use latte_core::{LatteCc, LatteConfig};
use latte_energy::EnergyModel;
use latte_gpusim::{Gpu, GpuConfig, Kernel, KernelStats, UncompressedPolicy};
use latte_workloads::benchmark;

fn run(gpu: &mut Gpu, bench: &latte_workloads::BenchmarkSpec) -> KernelStats {
    let mut total = KernelStats::default();
    for kernel in bench.build_kernels() {
        total.accumulate(&gpu.run_kernel(&kernel as &dyn Kernel));
    }
    total
}

fn main() {
    // The Similarity Score benchmark: the paper's showcase for
    // fine-grained adaptive compression (Figs 5 and 16).
    let bench = benchmark("SS").expect("SS is part of the suite");
    let config = GpuConfig::small();

    let mut baseline_gpu = Gpu::new(&config, |_| Box::new(UncompressedPolicy));
    let baseline = run(&mut baseline_gpu, &bench);

    let latte_config = LatteConfig {
        num_l1_sets: config.l1_geometry.num_sets(),
        l1_base_hit_latency: config.l1_hit_latency as f64,
        ..LatteConfig::paper()
    };
    let mut latte_gpu = Gpu::new(&config, move |_| Box::new(LatteCc::new(latte_config.clone())));
    let latte = run(&mut latte_gpu, &bench);

    let energy = EnergyModel::paper();
    println!("benchmark: {} ({})", bench.name, bench.abbr);
    println!(
        "baseline : {:>9} cycles, IPC {:.2}, L1 hit rate {:.1}%",
        baseline.cycles,
        baseline.ipc(),
        baseline.l1.hit_rate() * 100.0
    );
    println!(
        "LATTE-CC : {:>9} cycles, IPC {:.2}, L1 hit rate {:.1}%",
        latte.cycles,
        latte.ipc(),
        latte.l1.hit_rate() * 100.0
    );
    println!(
        "speedup  : {:.3}x   misses {:+.1}%   energy {:.3}x",
        baseline.cycles as f64 / latte.cycles as f64,
        (latte.l1.misses as f64 - baseline.l1.misses as f64) / baseline.l1.misses as f64 * 100.0,
        energy.account(&latte).total_nj() / energy.account(&baseline).total_nj()
    );
}
