//! Run every compression management policy on one benchmark (default SS)
//! and print the full comparison — speedup, miss reduction and energy.
//!
//! ```text
//! cargo run --release --example policy_shootout -- [BENCH]
//! cargo run --release --example policy_shootout -- KM
//! ```

use latte_bench::{run_benchmark, PolicyKind, ALL_POLICIES};
use latte_workloads::{benchmark, suite};

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "SS".to_owned());
    let Some(bench) = benchmark(&abbr) else {
        eprintln!("unknown benchmark '{abbr}'. available:");
        for b in suite() {
            eprintln!("  {:5} {} ({})", b.abbr, b.name, b.category);
        }
        std::process::exit(2);
    };
    println!("{} ({}) — {}\n", bench.name, bench.abbr, bench.category);
    let base = run_benchmark(PolicyKind::Baseline, &bench);
    println!(
        "{:20} {:>9} {:>10} {:>10} {:>9}",
        "policy", "speedup", "miss-redn", "energy", "hit%"
    );
    for policy in ALL_POLICIES {
        let r = run_benchmark(policy, &bench);
        println!(
            "{:20} {:>8.3}x {:>9.1}% {:>9.3}x {:>8.1}%",
            policy.name(),
            r.speedup_over(&base),
            r.miss_reduction_over(&base) * 100.0,
            r.energy_ratio_over(&base),
            r.stats.l1.hit_rate() * 100.0
        );
    }
}
