//! The paper's qualitative claims, asserted against the reproduction.
//!
//! Absolute numbers differ from the paper (our substrate is a rebuilt
//! simulator, not the authors' GPGPU-Sim testbed); these tests pin the
//! *shape* of the results — who wins, in which direction, and where the
//! crossovers fall. EXPERIMENTS.md records the measured values.

use latte_bench::{geomean, run_benchmark, PolicyKind};
use latte_workloads::{benchmark, c_sens, suite, Category};

fn speedups(policy: PolicyKind, benches: &[latte_workloads::BenchmarkSpec]) -> Vec<f64> {
    benches
        .iter()
        .map(|b| {
            let base = run_benchmark(PolicyKind::Baseline, b);
            run_benchmark(policy, b).speedup_over(&base)
        })
        .collect()
}

/// §V-A: LATTE-CC delivers a robust average speedup on cache-sensitive
/// workloads, comparable to or better than both static schemes.
#[test]
#[cfg_attr(debug_assertions, ignore = "suite-wide aggregate; run with --release")]
fn latte_cc_wins_on_cache_sensitive_mean() {
    let benches = c_sens();
    let latte = geomean(&speedups(PolicyKind::LatteCc, &benches));
    let bdi = geomean(&speedups(PolicyKind::StaticBdi, &benches));
    let sc = geomean(&speedups(PolicyKind::StaticSc, &benches));
    assert!(latte > 1.08, "LATTE-CC C-Sens mean {latte:.3}");
    assert!(latte > sc, "LATTE-CC {latte:.3} must beat Static-SC {sc:.3}");
    assert!(
        latte > bdi - 0.03,
        "LATTE-CC {latte:.3} must be at least comparable to Static-BDI {bdi:.3}"
    );
}

/// §V-A: cache-insensitive workloads are essentially unaffected by
/// LATTE-CC and Static-BDI, while Static-SC degrades several of them.
#[test]
#[cfg_attr(debug_assertions, ignore = "suite-wide aggregate; run with --release")]
fn cache_insensitive_workloads_are_safe_under_latte() {
    let benches: Vec<_> = suite()
        .into_iter()
        .filter(|b| b.category == Category::CInSens)
        .collect();
    for (b, s) in benches.iter().zip(speedups(PolicyKind::LatteCc, &benches)) {
        assert!(
            s > 0.90,
            "{}: LATTE-CC must not materially hurt C-InSens ({s:.3})",
            b.abbr
        );
    }
    let sc = geomean(&speedups(PolicyKind::StaticSc, &benches));
    assert!(
        sc < 0.99,
        "Static-SC should degrade the C-InSens mean, got {sc:.3}"
    );
}

/// Fig 11/13 call-out: Heartwall is the workload Static-SC damages most.
#[test]
fn static_sc_damages_heartwall() {
    let bench = benchmark("HW").expect("exists");
    let base = run_benchmark(PolicyKind::Baseline, &bench);
    let sc = run_benchmark(PolicyKind::StaticSc, &bench);
    let latte = run_benchmark(PolicyKind::LatteCc, &bench);
    assert!(
        sc.speedup_over(&base) < 0.75,
        "Static-SC on HW: {:.3}",
        sc.speedup_over(&base)
    );
    assert!(
        sc.energy_ratio_over(&base) > 1.2,
        "Static-SC must burn extra energy on HW"
    );
    // LATTE-CC detects the latency fragility and backs off to (near)
    // baseline behaviour.
    assert!(
        latte.speedup_over(&base) > 0.90,
        "LATTE-CC on HW: {:.3}",
        latte.speedup_over(&base)
    );
}

/// §V-C: on Similarity Score, fine-grained adaptation beats both statics —
/// BDI cannot compress SS's float data at all, and Static-SC's capacity
/// comes with latency it cannot always hide.
#[test]
fn similarity_score_showcases_adaptation() {
    let bench = benchmark("SS").expect("exists");
    let base = run_benchmark(PolicyKind::Baseline, &bench);
    let bdi = run_benchmark(PolicyKind::StaticBdi, &bench);
    let sc = run_benchmark(PolicyKind::StaticSc, &bench);
    let latte = run_benchmark(PolicyKind::LatteCc, &bench);
    // BDI is capacity-neutral on SS (float data defeats it).
    assert!(bdi.miss_reduction_over(&base).abs() < 0.05);
    // SC reduces misses dramatically...
    assert!(sc.miss_reduction_over(&base) > 0.25);
    // ...but LATTE-CC extracts more performance than either static.
    assert!(latte.speedup_over(&base) >= bdi.speedup_over(&base));
    assert!(latte.speedup_over(&base) >= sc.speedup_over(&base));
}

/// §V-A: graph workloads (BC, DJK) favour the low-latency mode: Static-BDI
/// wins big, Static-SC pays latency for little capacity.
#[test]
fn graph_workloads_favor_bdi() {
    for abbr in ["BC", "DJK"] {
        let bench = benchmark(abbr).expect("exists");
        let base = run_benchmark(PolicyKind::Baseline, &bench);
        let bdi = run_benchmark(PolicyKind::StaticBdi, &bench);
        let sc = run_benchmark(PolicyKind::StaticSc, &bench);
        let latte = run_benchmark(PolicyKind::LatteCc, &bench);
        assert!(bdi.speedup_over(&base) > 1.2, "{abbr}: BDI should win big");
        assert!(sc.speedup_over(&base) < 1.05, "{abbr}: SC should not pay off");
        // LATTE-CC learns to use the low-latency mode and captures a
        // substantial share of BDI's win.
        assert!(
            latte.speedup_over(&base) > 1.0 + (bdi.speedup_over(&base) - 1.0) * 0.4,
            "{abbr}: LATTE-CC {:.3} vs BDI {:.3}",
            latte.speedup_over(&base),
            bdi.speedup_over(&base)
        );
    }
}

/// §V-D: maximising hit counts is the wrong objective on a GPU — the
/// latency-blind Adaptive-Hit-Count policy trails LATTE-CC on the
/// cache-sensitive mean.
#[test]
#[cfg_attr(debug_assertions, ignore = "suite-wide aggregate; run with --release")]
fn hit_count_maximisation_is_suboptimal() {
    let benches = c_sens();
    let latte = geomean(&speedups(PolicyKind::LatteCc, &benches));
    let ahc = geomean(&speedups(PolicyKind::AdaptiveHitCount, &benches));
    assert!(
        latte > ahc,
        "LATTE-CC {latte:.3} must beat Adaptive-Hit-Count {ahc:.3}"
    );
}

/// §V-E: swapping BPC in as the high-capacity mode helps the BPC-affine
/// workloads while staying comparable on the C-Sens mean.
#[test]
#[cfg_attr(debug_assertions, ignore = "suite-wide aggregate; run with --release")]
fn bdi_bpc_variant_helps_bpc_affine_workloads() {
    let affine: Vec<_> = ["PF", "MIS", "CLR"]
        .iter()
        .map(|a| benchmark(a).expect("exists"))
        .collect();
    let with_sc = geomean(&speedups(PolicyKind::LatteCc, &affine));
    let with_bpc = geomean(&speedups(PolicyKind::LatteCcBdiBpc, &affine));
    assert!(
        with_bpc >= with_sc - 0.01,
        "BDI-BPC {with_bpc:.3} should help BPC-affine workloads vs {with_sc:.3}"
    );
    let all = c_sens();
    let mean_sc = geomean(&speedups(PolicyKind::LatteCc, &all));
    let mean_bpc = geomean(&speedups(PolicyKind::LatteCcBdiBpc, &all));
    assert!(
        (mean_sc - mean_bpc).abs() < 0.06,
        "variants should be comparable on average: {mean_sc:.3} vs {mean_bpc:.3}"
    );
}

/// Debug-profile smoke variant of the suite-wide aggregates: the same
/// "LATTE-CC wins the cache-sensitive mean" claim over a 3-benchmark
/// mini-suite with relaxed thresholds, cheap enough to run ungated in
/// every `cargo test`. The mini-suite reuses benchmarks the per-workload
/// tests above already simulate, so the memoised runner makes this test
/// nearly free. The full-suite versions stay `--release`-gated.
#[test]
fn latte_cc_wins_mini_suite_mean_smoke() {
    let benches: Vec<_> = ["SS", "BC", "DJK"]
        .iter()
        .map(|a| benchmark(a).expect("exists"))
        .collect();
    assert!(
        benches.iter().all(|b| b.category == Category::CSens),
        "the mini-suite must be drawn from the cache-sensitive set"
    );
    let latte = geomean(&speedups(PolicyKind::LatteCc, &benches));
    let sc = geomean(&speedups(PolicyKind::StaticSc, &benches));
    assert!(latte > 1.02, "LATTE-CC mini-suite mean {latte:.3}");
    assert!(
        latte > sc,
        "LATTE-CC {latte:.3} must beat Static-SC {sc:.3} on the mini-suite"
    );
}

/// §V-A energy: LATTE-CC saves energy on the cache-sensitive mean, more
/// than Static-SC does.
#[test]
#[cfg_attr(debug_assertions, ignore = "suite-wide aggregate; run with --release")]
fn latte_cc_saves_energy() {
    let benches = c_sens();
    let ratios: Vec<f64> = benches
        .iter()
        .map(|b| {
            let base = run_benchmark(PolicyKind::Baseline, b);
            run_benchmark(PolicyKind::LatteCc, b).energy_ratio_over(&base)
        })
        .collect();
    let mean = geomean(&ratios);
    assert!(mean < 0.95, "LATTE-CC C-Sens energy ratio {mean:.3}");
}
