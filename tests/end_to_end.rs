//! Cross-crate integration tests: full simulations spanning the
//! workload, simulator, cache, compression, policy and energy crates.

use latte_bench::{run_benchmark, run_benchmark_with_config, PolicyKind, ALL_POLICIES};
use latte_energy::EnergyModel;
use latte_gpusim::GpuConfig;
use latte_workloads::{benchmark, suite};

/// The whole pipeline is deterministic end to end.
#[test]
fn full_pipeline_is_deterministic() {
    let bench = benchmark("SS").expect("SS exists");
    let a = run_benchmark(PolicyKind::LatteCc, &bench);
    let b = run_benchmark(PolicyKind::LatteCc, &bench);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.energy, b.energy);
}

/// Every policy runs every benchmark to completion without timeouts, with
/// consistent accounting. (Debug builds cover a representative subset to
/// keep `cargo test` fast; release builds sweep the whole suite.)
#[test]
fn every_policy_completes_every_benchmark() {
    let benches: Vec<_> = if cfg!(debug_assertions) {
        ["SS", "BC", "HW", "PRK"]
            .iter()
            .map(|a| benchmark(a).expect("exists"))
            .collect()
    } else {
        suite()
    };
    for bench in benches {
        let base = run_benchmark(PolicyKind::Baseline, &bench);
        for policy in ALL_POLICIES {
            let r = run_benchmark(policy, &bench);
            let s = &r.stats;
            assert!(!s.timed_out, "{}/{} timed out", bench.abbr, policy.name());
            // Instruction counts are policy-invariant (same program).
            assert_eq!(
                s.instructions,
                base.stats.instructions,
                "{}/{}: instruction count drifted",
                bench.abbr,
                policy.name()
            );
            // Accounting identities.
            assert_eq!(s.l1.accesses(), s.l1.hits + s.l1.misses);
            assert!(s.l1.compressed_hits <= s.l1.hits);
            assert!(s.decompressions.total() <= s.l1.hits);
            assert!(s.dram_accesses <= s.l2.accesses());
            // A policy must never be catastrophically wrong.
            assert!(
                r.speedup_over(&base) > 0.40,
                "{}/{}: speedup {:.3}",
                bench.abbr,
                policy.name(),
                r.speedup_over(&base)
            );
        }
    }
}

/// The baseline policy never compresses, never decompresses and uses no
/// compression energy.
#[test]
fn baseline_never_compresses() {
    for abbr in ["SS", "BC", "HW"] {
        let bench = benchmark(abbr).expect("exists");
        let r = run_benchmark(PolicyKind::Baseline, &bench);
        assert_eq!(r.stats.compressions.total(), 0);
        assert_eq!(r.stats.decompressions.total(), 0);
        assert_eq!(r.energy.compression_overhead_nj(), 0.0);
    }
}

/// Energy reports decompose consistently and track runtime.
#[test]
fn energy_accounting_is_consistent() {
    let bench = benchmark("KM").expect("exists");
    let model = EnergyModel::paper();
    for policy in [PolicyKind::Baseline, PolicyKind::LatteCc] {
        let r = run_benchmark(policy, &bench);
        let e = model.account(&r.stats);
        assert!(e.total_nj() > 0.0);
        let sum = e.core_nj
            + e.l1_nj
            + e.l2_nj
            + e.dram_nj
            + e.noc_nj
            + e.compression_nj
            + e.decompression_nj
            + e.static_nj;
        assert!((e.total_nj() - sum).abs() < 1e-6);
        // Static energy is proportional to cycles at fixed power.
        let expected_static = 42.0 * (r.stats.cycles as f64 / 1.4);
        assert!((e.static_nj - expected_static).abs() / expected_static < 1e-9);
    }
}

/// The zero-decompression-latency switch can only help.
#[test]
fn zero_latency_bound_dominates() {
    let bench = benchmark("SS").expect("exists");
    let real = run_benchmark(PolicyKind::StaticSc, &bench);
    let free = run_benchmark_with_config(
        PolicyKind::StaticSc,
        &bench,
        &GpuConfig {
            zero_decompression_latency: true,
            ..latte_bench::runner::experiment_config()
        },
    );
    assert!(
        free.stats.cycles <= real.stats.cycles,
        "removing decompression latency must not slow anything down"
    );
}

/// The latency-only mode (Fig 4) keeps miss behaviour identical to the
/// baseline while charging decompression.
#[test]
fn latency_only_mode_pins_misses() {
    let config = GpuConfig {
        ignore_capacity_benefit: true,
        ..latte_bench::runner::experiment_config()
    };
    let bench = benchmark("HW").expect("exists");
    let base = run_benchmark_with_config(PolicyKind::Baseline, &bench, &config);
    let sc = run_benchmark_with_config(PolicyKind::StaticSc, &bench, &config);
    // Lookup-miss counts include MSHR merges, which shift slightly with
    // issue timing; the capacity (refill) behaviour must stay pinned.
    let (b, s) = (base.stats.l1.fills as f64, sc.stats.l1.fills as f64);
    assert!(
        (b - s).abs() / b < 0.05,
        "latency-only mode must not change refill behaviour: {b} vs {s}"
    );
    assert!(sc.stats.cycles >= base.stats.cycles);
}

/// A 4x larger L1 never hurts, and helps the cache-sensitive workloads.
#[test]
fn bigger_cache_helps_sensitively() {
    let base_config = latte_bench::runner::experiment_config();
    let big_config = GpuConfig {
        l1_geometry: latte_cache::CacheGeometry {
            size_bytes: base_config.l1_geometry.size_bytes * 4,
            ..base_config.l1_geometry
        },
        ..base_config.clone()
    };
    for abbr in ["BC", "SS", "PTH"] {
        let bench = benchmark(abbr).expect("exists");
        let small = run_benchmark_with_config(PolicyKind::Baseline, &bench, &base_config);
        let big = run_benchmark_with_config(PolicyKind::Baseline, &bench, &big_config);
        assert!(
            big.stats.cycles <= small.stats.cycles * 101 / 100,
            "{abbr}: bigger cache must not hurt"
        );
        assert!(big.stats.l1.misses <= small.stats.l1.misses);
    }
}

/// Policy decision reports are well-formed for adaptive policies and empty
/// for static ones.
#[test]
fn policy_reports_reflect_adaptivity() {
    let bench = benchmark("SS").expect("exists");
    let latte = run_benchmark(PolicyKind::LatteCc, &bench);
    assert!(
        latte.reports.iter().any(|r| r.total_eps() > 0),
        "LATTE-CC must record mode decisions"
    );
    let bdi = run_benchmark(PolicyKind::StaticBdi, &bench);
    assert!(bdi.reports.iter().all(|r| r.total_eps() == 0));
}
